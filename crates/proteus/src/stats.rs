//! Measurements collected from a simulation run.

use cnet_timing::{program_order, sweep, Operation};
use cnet_topology::OutputCounts;

/// Everything measured during one simulated benchmark run.
///
/// The two headline quantities mirror the paper's:
/// [`RunStats::nonlinearizable_ratio`] (Figures 5 and 6) and
/// [`RunStats::average_ratio`] (Figure 7).
#[derive(Debug, Clone)]
pub struct RunStats {
    /// One record per completed operation, in completion order. The
    /// `token` field is the completion index; `start`/`end` are the
    /// simulated-cycle timestamps used for the linearizability check.
    pub operations: Vec<Operation>,
    /// The processor that performed each operation, parallel to
    /// `operations` (the `Operation::input` field holds the *network
    /// input*, which several processors can share).
    pub completed_by: Vec<usize>,
    /// Final per-counter totals (must form a step — checked in tests).
    pub output_counts: OutputCounts,
    /// The simulated time at which the last operation completed.
    pub sim_time: u64,
    /// Number of toggle transitions (balancer critical sections run).
    pub toggle_count: u64,
    /// Total cycles tokens waited before toggling (the paper's `Tog`
    /// numerator).
    pub toggle_wait_total: u64,
    /// Number of diffracted *pairs* in prism arrays.
    pub diffraction_pairs: u64,
    /// Total node visits (toggles + diffracted tokens).
    pub node_visits: u64,
    /// Total cycles spent at nodes across all visits (arrival to
    /// routing decision).
    pub node_wait_total: u64,
    /// The deepest FIFO queue observed at any balancer lock — a direct
    /// contention indicator.
    pub max_lock_queue: u64,
    /// Interconnect-fabric counters (transmission attempts, drops,
    /// retries). All zero on the degenerate legacy wire, which never
    /// enters the fabric queue machinery.
    pub fabric: FabricStats,
    /// Non-linearizable operations (Definition 2.4), accumulated by the
    /// simulator's streaming checker as operations complete — no
    /// post-run sweep needed.
    pub nonlinearizable: usize,
    /// Per-balancer contention metrics and network-level live
    /// estimates, recorded by the `cnet-obs` probes. `None` unless the
    /// simulator was built with the `obs` feature — the field itself
    /// always exists so downstream records can carry metrics without a
    /// feature of their own.
    pub metrics: Option<cnet_obs::MetricsSnapshot>,
}

impl RunStats {
    /// The number of non-linearizable operations (Definition 2.4).
    #[must_use]
    pub fn nonlinearizable_count(&self) -> usize {
        self.nonlinearizable
    }

    /// The fraction of non-linearizable operations — the y-axis of the
    /// paper's Figures 5 and 6.
    #[must_use]
    pub fn nonlinearizable_ratio(&self) -> f64 {
        if self.operations.is_empty() {
            0.0
        } else {
            self.nonlinearizable as f64 / self.operations.len() as f64
        }
    }

    /// The average time a token waits before toggling a balancer — the
    /// paper's `Tog`. Falls back to the all-visit average when no
    /// toggles happened (a fully-diffracted run), so the ratio below is
    /// always defined.
    #[must_use]
    pub fn avg_toggle_wait(&self) -> f64 {
        sweep::avg_toggle_wait(
            self.toggle_wait_total,
            self.toggle_count,
            self.node_wait_total,
            self.node_visits,
        )
    }

    /// The paper's Figure 7 statistic: the measured average
    /// `c2/c1 = (Tog + W) / Tog`.
    ///
    /// Returns infinity for a (degenerate) run with zero measured wait
    /// and a positive `W`.
    #[must_use]
    pub fn average_ratio(&self, wait_cycles: u64) -> f64 {
        sweep::average_ratio(
            self.toggle_wait_total,
            self.toggle_count,
            self.node_wait_total,
            self.node_visits,
            wait_cycles,
        )
    }

    /// Operations whose own processor saw a *smaller* value than one of
    /// its earlier operations — the per-process (sequential-consistency
    /// style) restriction of the violation count. The simulator starts
    /// a processor's next operation strictly after the previous one's
    /// response, so every program-order violation is also counted by
    /// [`Self::nonlinearizable_count`].
    #[must_use]
    pub fn program_order_violations(&self) -> usize {
        // look processes up by index in the completed_by map — no
        // clone-and-retag of the trace
        program_order::count_program_order_violations_by(&self.operations, |i| self.completed_by[i])
    }

    /// Operation-latency histogram over power-of-two buckets: entry
    /// `i` counts operations with latency in `[2^i, 2^(i+1))` cycles
    /// (entry 0 also includes zero-latency operations).
    #[must_use]
    pub fn latency_histogram(&self) -> Vec<u64> {
        let mut buckets: Vec<u64> = Vec::new();
        for op in &self.operations {
            let lat = op.end - op.start;
            let b = (64 - lat.max(1).leading_zeros()) as usize - 1;
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        buckets
    }

    /// Mean operation latency in simulated cycles.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.operations.is_empty() {
            return 0.0;
        }
        let total: u64 = self.operations.iter().map(|o| o.end - o.start).sum();
        total as f64 / self.operations.len() as f64
    }

    /// Completed operations per simulated cycle (throughput).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.sim_time == 0 {
            return 0.0;
        }
        self.operations.len() as f64 / self.sim_time as f64
    }

    /// The serializable scalar summary of this run: every headline
    /// number, none of the per-operation trace. `wait_cycles` is the
    /// workload's `W`, needed for the Figure 7 ratio.
    ///
    /// Trace-derived metrics (program order, latency) come from one
    /// shared pass over the trace ([`sweep::trace_metrics`]); the
    /// non-linearizable count was already streamed during the run.
    #[must_use]
    pub fn summary(&self, wait_cycles: u64) -> StatsSummary {
        let m = sweep::trace_metrics(&self.operations, |i| self.completed_by[i]);
        debug_assert_eq!(m.nonlinearizable, self.nonlinearizable);
        StatsSummary {
            completed_ops: self.operations.len(),
            sim_time: self.sim_time,
            nonlinearizable: self.nonlinearizable,
            nonlinearizable_ratio: self.nonlinearizable_ratio(),
            program_order_violations: m.program_order_violations,
            avg_toggle_wait: self.avg_toggle_wait(),
            average_ratio: self.average_ratio(wait_cycles),
            mean_latency: m.mean_latency(),
            throughput: self.throughput(),
            toggle_count: self.toggle_count,
            toggle_wait_total: self.toggle_wait_total,
            diffraction_pairs: self.diffraction_pairs,
            node_visits: self.node_visits,
            max_lock_queue: self.max_lock_queue,
            fabric: (self.fabric != FabricStats::default()).then_some(self.fabric),
        }
    }
}

/// Always-on counters of the interconnect-fabric dynamics (see
/// [`cnet_topology::fabric`]): what the wire refused and what the
/// retry policy did about it. Every counter is zero on the degenerate
/// legacy wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Transmission attempts onto the fabric (first tries + retries).
    pub attempts: u64,
    /// Attempts killed by the link's random loss draw.
    pub loss_drops: u64,
    /// Tokens tail-dropped at a full queue (backpressure off).
    pub full_drops: u64,
    /// Tokens NACKed at a full queue (backpressure on).
    pub nack_retries: u64,
    /// Tokens force-delivered after exhausting the per-hop attempt
    /// budget — the fabric's guaranteed-termination escape hatch.
    pub forced_deliveries: u64,
    /// Deepest fabric queue observed (waiters + the token in service).
    pub max_queue_depth: u64,
}

serde::impl_serde_struct!(FabricStats {
    attempts,
    loss_drops,
    full_drops,
    nack_retries,
    forced_deliveries,
    max_queue_depth,
});

impl FabricStats {
    /// Tokens the fabric refused at least once (lost or tail-dropped
    /// or NACKed attempts).
    #[must_use]
    pub fn refusals(&self) -> u64 {
        self.loss_drops + self.full_drops + self.nack_retries
    }

    /// Retransmissions actually scheduled: every refusal retries
    /// except the final one of a force-delivered token.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.refusals().saturating_sub(self.forced_deliveries)
    }
}

/// The scalar measurements of one run, in serializable form — what the
/// experiment harness records per grid cell.
///
/// Derived quantities (the counts and ratios) are frozen at summary
/// time so a deserialized record stands on its own without the
/// operation trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSummary {
    /// Operations completed.
    pub completed_ops: usize,
    /// Simulated time of the last completion.
    pub sim_time: u64,
    /// Non-linearizable operations (Definition 2.4).
    pub nonlinearizable: usize,
    /// `nonlinearizable / completed_ops`.
    pub nonlinearizable_ratio: f64,
    /// Violations visible to a single processor's program order.
    pub program_order_violations: usize,
    /// The paper's `Tog`.
    pub avg_toggle_wait: f64,
    /// The paper's measured `c2/c1 = (Tog + W)/Tog`.
    pub average_ratio: f64,
    /// Mean operation latency in cycles.
    pub mean_latency: f64,
    /// Operations per simulated cycle.
    pub throughput: f64,
    /// Balancer toggle transitions.
    pub toggle_count: u64,
    /// Total cycles waited before toggling.
    pub toggle_wait_total: u64,
    /// Diffracted prism pairs.
    pub diffraction_pairs: u64,
    /// Total node visits.
    pub node_visits: u64,
    /// Deepest balancer-lock queue observed.
    pub max_lock_queue: u64,
    /// Fabric counters, when the run's interconnect refused anything
    /// (`None` on degenerate-wire runs and in records written before
    /// the fabric existed).
    pub fabric: Option<FabricStats>,
}

// Serde is hand-written (not `impl_serde_struct!`) so summaries
// recorded before the fabric existed — including every committed
// `BENCH_*.json` baseline — keep loading: a missing `fabric` field
// means the degenerate wire.
impl serde::Serialize for StatsSummary {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("completed_ops".to_string(), self.completed_ops.to_value()),
            ("sim_time".to_string(), self.sim_time.to_value()),
            (
                "nonlinearizable".to_string(),
                self.nonlinearizable.to_value(),
            ),
            (
                "nonlinearizable_ratio".to_string(),
                self.nonlinearizable_ratio.to_value(),
            ),
            (
                "program_order_violations".to_string(),
                self.program_order_violations.to_value(),
            ),
            (
                "avg_toggle_wait".to_string(),
                self.avg_toggle_wait.to_value(),
            ),
            ("average_ratio".to_string(), self.average_ratio.to_value()),
            ("mean_latency".to_string(), self.mean_latency.to_value()),
            ("throughput".to_string(), self.throughput.to_value()),
            ("toggle_count".to_string(), self.toggle_count.to_value()),
            (
                "toggle_wait_total".to_string(),
                self.toggle_wait_total.to_value(),
            ),
            (
                "diffraction_pairs".to_string(),
                self.diffraction_pairs.to_value(),
            ),
            ("node_visits".to_string(), self.node_visits.to_value()),
            ("max_lock_queue".to_string(), self.max_lock_queue.to_value()),
        ];
        if let Some(fabric) = &self.fabric {
            fields.push(("fabric".to_string(), fabric.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl serde::Deserialize for StatsSummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fabric = match v.get("fabric") {
            Some(raw) => Some(
                FabricStats::from_value(raw)
                    .map_err(|e| serde::Error::new(format!("field `fabric`: {e}")))?,
            ),
            None => None,
        };
        Ok(StatsSummary {
            completed_ops: v.field("completed_ops")?,
            sim_time: v.field("sim_time")?,
            nonlinearizable: v.field("nonlinearizable")?,
            nonlinearizable_ratio: v.field("nonlinearizable_ratio")?,
            program_order_violations: v.field("program_order_violations")?,
            avg_toggle_wait: v.field("avg_toggle_wait")?,
            average_ratio: v.field("average_ratio")?,
            mean_latency: v.field("mean_latency")?,
            throughput: v.field("throughput")?,
            toggle_count: v.field("toggle_count")?,
            toggle_wait_total: v.field("toggle_wait_total")?,
            diffraction_pairs: v.field("diffraction_pairs")?,
            node_visits: v.field("node_visits")?,
            max_lock_queue: v.field("max_lock_queue")?,
            fabric,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(ops: Vec<Operation>) -> RunStats {
        let n = ops.len();
        let nonlinearizable = cnet_timing::linearizability::count_nonlinearizable(&ops);
        RunStats {
            operations: ops,
            completed_by: vec![0; n],
            output_counts: OutputCounts::zeros(2),
            sim_time: 100,
            toggle_count: 4,
            toggle_wait_total: 40,
            diffraction_pairs: 0,
            node_visits: 4,
            node_wait_total: 40,
            max_lock_queue: 0,
            nonlinearizable,
            fabric: FabricStats::default(),
            metrics: None,
        }
    }

    fn op(token: usize, start: u64, end: u64, value: u64) -> Operation {
        Operation {
            token,
            input: 0,
            start,
            end,
            counter: 0,
            value,
        }
    }

    #[test]
    fn ratio_and_latency() {
        let s = stats_with(vec![op(0, 0, 10, 1), op(1, 20, 30, 0)]);
        assert_eq!(s.nonlinearizable_count(), 1);
        assert!((s.nonlinearizable_ratio() - 0.5).abs() < 1e-12);
        assert!((s.mean_latency() - 10.0).abs() < 1e-12);
        assert!((s.throughput() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn average_ratio_formula() {
        let s = stats_with(vec![]);
        assert!((s.avg_toggle_wait() - 10.0).abs() < 1e-12);
        assert!((s.average_ratio(100) - 11.0).abs() < 1e-12);
        assert!((s.average_ratio(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_runs_are_safe() {
        let mut s = stats_with(vec![]);
        s.toggle_count = 0;
        s.node_visits = 0;
        s.node_wait_total = 0;
        s.toggle_wait_total = 0;
        assert_eq!(s.avg_toggle_wait(), 0.0);
        assert_eq!(s.average_ratio(0), 1.0);
        assert!(s.average_ratio(10).is_infinite());
        assert_eq!(s.mean_latency(), 0.0);
        s.sim_time = 0;
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn summary_round_trips_through_serde() {
        use serde::{Deserialize as _, Serialize as _};
        let s = stats_with(vec![op(0, 0, 10, 1), op(1, 20, 30, 0)]);
        let summary = s.summary(100);
        assert_eq!(summary.completed_ops, 2);
        assert_eq!(summary.nonlinearizable, 1);
        let text = serde::json::to_string_pretty(&summary.to_value());
        let back = StatsSummary::from_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn fallback_to_node_wait_when_all_diffracted() {
        let mut s = stats_with(vec![]);
        s.toggle_count = 0;
        s.toggle_wait_total = 0;
        s.node_visits = 10;
        s.node_wait_total = 50;
        assert!((s.avg_toggle_wait() - 5.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod consistency_tests {
    use super::*;
    use crate::{SimConfig, Simulator, Workload};
    use cnet_topology::constructions;

    #[test]
    fn program_order_uses_processors_not_inputs() {
        // two ops on the same *network input* but different processors:
        // the cross-processor inversion is not a program-order violation
        let ops = vec![
            Operation {
                token: 0,
                input: 3,
                start: 0,
                end: 1,
                counter: 0,
                value: 9,
            },
            Operation {
                token: 1,
                input: 3,
                start: 2,
                end: 3,
                counter: 0,
                value: 1,
            },
        ];
        let nonlinearizable = cnet_timing::linearizability::count_nonlinearizable(&ops);
        let stats = RunStats {
            operations: ops,
            completed_by: vec![0, 1], // different processors
            output_counts: OutputCounts::zeros(2),
            sim_time: 3,
            toggle_count: 1,
            toggle_wait_total: 1,
            diffraction_pairs: 0,
            node_visits: 1,
            node_wait_total: 1,
            max_lock_queue: 0,
            nonlinearizable,
            fabric: FabricStats::default(),
            metrics: None,
        };
        assert_eq!(stats.nonlinearizable_count(), 1);
        assert_eq!(stats.program_order_violations(), 0);
    }

    #[test]
    fn program_order_at_most_linearizability_on_real_runs() {
        let net = constructions::counting_tree(16).unwrap();
        let wl = Workload {
            total_ops: 1500,
            ..Workload::paper(32, 50, 10_000)
        };
        let stats = Simulator::new(&net, SimConfig::diffracting(29)).run(&wl);
        assert!(stats.program_order_violations() <= stats.nonlinearizable_count());
    }

    #[test]
    fn latency_histogram_buckets_by_power_of_two() {
        let ops = vec![
            Operation {
                token: 0,
                input: 0,
                start: 0,
                end: 1,
                counter: 0,
                value: 0,
            }, // 1 -> b0
            Operation {
                token: 1,
                input: 0,
                start: 0,
                end: 3,
                counter: 0,
                value: 1,
            }, // 3 -> b1
            Operation {
                token: 2,
                input: 0,
                start: 0,
                end: 8,
                counter: 0,
                value: 2,
            }, // 8 -> b3
        ];
        let stats = RunStats {
            operations: ops,
            completed_by: vec![0, 0, 0],
            output_counts: OutputCounts::zeros(2),
            sim_time: 8,
            toggle_count: 1,
            toggle_wait_total: 1,
            diffraction_pairs: 0,
            node_visits: 1,
            node_wait_total: 1,
            max_lock_queue: 0,
            fabric: FabricStats::default(),
            nonlinearizable: 0,
            metrics: None,
        };
        assert_eq!(stats.latency_histogram(), vec![1, 1, 0, 1]);
    }
}
