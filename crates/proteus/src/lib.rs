//! A deterministic discrete-event shared-memory multiprocessor
//! simulator — the substrate for reproducing the paper's Section 5
//! study.
//!
//! The paper ran its benchmark on Proteus, a simulator of the MIT
//! Alewife distributed-shared-memory machine. This crate substitutes a
//! purpose-built discrete-event simulator that models exactly the
//! features the study depends on:
//!
//! * `n` **processors** repeatedly traversing a counting network, each
//!   operation being one token;
//! * **balancers as critical sections** protected by a FIFO queue lock
//!   (the behavioural core of the MCS lock used in the paper);
//! * optional **prism (diffraction) arrays** in front of tree balancers
//!   — pairs of processors that collide in a prism slot *diffract* (one
//!   goes to each output) without touching the toggle, as in Shavit and
//!   Zemach's diffracting trees;
//! * **wire latencies** between nodes (shared-memory access cost);
//! * the benchmark's **delay injection**: a fraction `F` of the
//!   processors waits `W` cycles after traversing each node, skewing
//!   the effective `c2/c1` ratio.
//!
//! Measurements mirror the paper's: the fraction of non-linearizable
//! operations (Definition 2.4, via the `cnet-timing` checker) and the
//! average ratio `c2/c1 = (Tog + W)/Tog`, where `Tog` is the average
//! time a token waits before toggling a balancer (Figure 7).
//!
//! Everything is seeded and event-ordering is deterministic, so every
//! run is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use cnet_proteus::{SimConfig, Simulator, WaitMode, Workload};
//! use cnet_topology::constructions;
//!
//! let net = constructions::bitonic(8)?;
//! let workload = Workload {
//!     total_ops: 500,
//!     wait_mode: WaitMode::Fixed,
//!     ..Workload::paper(16, 50, 1000)
//! };
//! let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&workload);
//! assert_eq!(stats.operations.len(), 500);
//! println!("non-linearizable ratio: {}", stats.nonlinearizable_ratio());
//! println!("avg c2/c1: {:.2}", stats.average_ratio(1000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod node;
mod obs;
mod queue;
pub mod rng;
mod sim;
mod stats;

pub use config::{
    ArrivalProcess, Placement, PrismConfig, SimConfig, WaitMode, Workload, WorkloadError,
};
// the fabric vocabulary SimConfig embeds, re-exported so simulator
// users need not name cnet-topology for wire-model configuration
pub use cnet_topology::{Fabric, FabricError, FabricShape, LinkSpec, RetryPolicy, SwitchSpec};
pub use rng::SimRng;
pub use sim::{MetricsRecorder, Simulator};
pub use stats::{FabricStats, RunStats, StatsSummary};
