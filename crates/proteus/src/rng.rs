//! The simulator's inlined PRNG.
//!
//! `SimRng` is a SplitMix64 generator whose output stream is
//! *bit-identical* to the vendored `rand::rngs::StdRng` (same state
//! update, same avalanche constants, same Lemire-with-one-rejection
//! range reduction), so swapping it into the hot loop changes no seeded
//! artifact: the golden-trace tests in `tests/golden.rs` pin this
//! equivalence against fixtures captured before the swap.
//!
//! What it removes is the *call shape*: the vendored `rand` samples
//! through `&mut dyn RngCore` (one virtual call per draw, opaque to the
//! inliner), while `SimRng`'s draw methods are concrete, `#[inline]`,
//! and monomorphic — the simulator's two or three draws per event
//! compile down to a handful of multiply/xor/shift instructions.
//!
//! Seeds reach a `SimRng` through `SimConfig::seed`, which the
//! experiment harness derives per grid cell with
//! `cnet_harness::seed::derive_cell_seed`.

/// SplitMix64, stream-compatible with the vendored `StdRng`.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    ///
    /// Reproduces the vendored `rand`'s reduction exactly (zone
    /// rejection, then modulo), so the draw sequence — including
    /// rejected draws — matches `StdRng::gen_range(0..span)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range (`span == 0`).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample empty range");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % span;
            }
        }
    }

    /// Uniform value in `[0, max]`, matching `gen_range(0..=max)`.
    #[inline]
    pub fn inclusive(&mut self, max: u64) -> u64 {
        if max == u64::MAX {
            self.next_u64()
        } else {
            self.below(max + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn raw_stream_matches_vendored_stdrng() {
        let mut a = SimRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = <StdRng as SeedableRng>::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), rand::RngCore::next_u64(&mut b));
        }
    }

    #[test]
    fn range_draws_match_vendored_gen_range() {
        // interleave the three draw shapes the simulator uses, so the
        // rejection behaviour is exercised on the same stream
        let mut a = SimRng::seed_from_u64(42);
        let mut b = <StdRng as SeedableRng>::seed_from_u64(42);
        for i in 1..500u64 {
            assert_eq!(a.below(i), b.gen_range(0..i), "below({i})");
            assert_eq!(a.inclusive(i), b.gen_range(0..=i), "inclusive({i})");
            let slots = (i % 31 + 1) as usize;
            assert_eq!(
                a.below(slots as u64) as usize,
                b.gen_range(0..slots),
                "slots {slots}"
            );
        }
    }

    #[test]
    fn inclusive_handles_the_full_span() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        assert_eq!(a.inclusive(u64::MAX), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from_u64(0).below(0);
    }
}
