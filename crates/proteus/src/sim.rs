//! The discrete-event simulation engine.
//!
//! # Hot-loop layout
//!
//! The per-event handlers touch only flat, pre-sized vectors:
//!
//! * toggles in one dense `Vec<BalancerState>` (16 bytes per node);
//! * every FIFO lock (balancers *and* counters) in one [`LockBank`]
//!   threaded through a single per-processor `next` array — no
//!   per-lock heap buffers;
//! * wiring flattened into a routing table of `(target, fixed cost)`
//!   entries, where the fixed cost folds the link cost and the mesh
//!   hop distance computed once at construction — the topology graph
//!   is never consulted while events are in flight;
//! * events packed to `u32` fields so queue entries stay small.
//!
//! None of this changes what is simulated: event order, RNG draw
//! order, and therefore every statistic are bit-identical to the
//! straightforward implementation (the golden-trace tests pin this).

use cnet_timing::linearizability::OnlineChecker;
use cnet_timing::Operation;
use cnet_topology::{OutputCounts, Topology, WireEnd};

use cnet_topology::FabricShape;

use crate::config::{ArrivalProcess, Placement, SimConfig, WaitMode, Workload};
use crate::node::{toggles_for, LockBank, Prism};
use crate::obs::SimObs;
use crate::queue::{HeapQueue, Queue, WheelQueue, HEAP_CROSSOVER};
use crate::rng::SimRng;
use crate::stats::{FabricStats, RunStats};

/// The events a simulated processor can experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Begin the next counting operation (or retire if the quota is
    /// reached).
    StartOp { proc: u32 },
    /// Arrive at a balancer node.
    ArriveNode { proc: u32, node: u32 },
    /// Finish the balancer critical section: toggle, route, release.
    ToggleDone { proc: u32, node: u32 },
    /// A prism slot occupancy timed out without a collision.
    PrismTimeout {
        proc: u32,
        node: u32,
        slot: u32,
        stamp: u32,
    },
    /// (Re)transmit the current hop onto the fabric: loss draw,
    /// jitter draw, propagation (non-degenerate fabrics only).
    FabricSend { proc: u32 },
    /// Arrive at the current fabric queue stage of the hop.
    FabricArrive { proc: u32 },
    /// The fabric queue finishes serving this token at its stage.
    FabricServe { proc: u32 },
    /// Arrive at an output counter (and queue if it is busy).
    ArriveCounter { proc: u32, counter: u32 },
    /// The counter finishes serving this processor's fetch-and-inc.
    CounterDone { proc: u32, counter: u32 },
}

/// Per-processor simulation state.
#[derive(Debug, Clone)]
struct Proc {
    delayed: bool,
    input: u32,
    /// Entry node behind this processor's network input.
    entry: u32,
    op_start: u64,
    /// Arrival time at the node currently being visited (for `Tog`).
    arrive_time: u64,
    /// Route index of the hop currently in the fabric (non-degenerate
    /// fabrics only).
    hop_route: u32,
    /// Which stage of the hop's queue path the token is in.
    hop_stage: u32,
    /// Failed transmission attempts on the current hop.
    attempts: u32,
    /// When the current hop left its node, for wire-latency telemetry.
    hop_depart: u64,
}

/// High bit of a route target: set when the target is a counter.
const COUNTER_BIT: u32 = 1 << 31;

/// Seed perturbation for the arrival-schedule RNG stream. Open-loop
/// gaps draw from their own generator so the main stream (prism slots,
/// jitter, random waits) is untouched — closed-loop traces stay
/// bit-identical whether or not this stream exists.
const ARRIVAL_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// One precomputed wire: where output `out` of a node leads and what
/// the traversal costs before jitter and injected waits.
#[derive(Debug, Clone, Copy)]
struct Route {
    /// Destination node index, or counter index with [`COUNTER_BIT`]
    /// set.
    target: u32,
    /// `link_cost` plus the mesh hop cost between the two homes.
    cost: u64,
}

/// The deterministic discrete-event simulator.
///
/// See the [crate documentation](crate) for the machine model. A
/// `Simulator` is cheap to construct; all mutable state lives inside
/// [`Simulator::run`], so one simulator can run many workloads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    topology: &'a Topology,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given network and machine model.
    #[must_use]
    pub fn new(topology: &'a Topology, config: SimConfig) -> Self {
        Simulator { topology, config }
    }

    /// The simulated network.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The machine-model configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Runs the workload to completion and returns the measurements.
    ///
    /// Processors start staggered by one cycle each (ids `0..n` start
    /// at times `0..n`) and immediately begin a new operation whenever
    /// the previous one completes, until `workload.total_ops`
    /// operations have *started*; every started operation completes.
    ///
    /// The run loop is monomorphized per event-queue type (see
    /// [`crate::queue`]): small-`n` runs use a plain binary heap,
    /// large-`n` runs the bucket wheel. Both produce the identical
    /// `(time, push-order)` pop stream, so the choice is invisible in
    /// every statistic.
    #[must_use]
    pub fn run(&self, workload: &Workload) -> RunStats {
        let (mut stats, recorder) = self.run_instrumented(workload);
        stats.metrics = recorder.finish();
        stats
    }

    /// Like [`Simulator::run`], but hands the metric recorder back
    /// unfrozen so the caller can keep snapshot assembly out of its
    /// own timing window: the returned [`RunStats`] has `metrics:
    /// None`, and [`MetricsRecorder::finish`] builds the snapshot.
    /// The harness times cells around this call — recording stays
    /// inside the measurement, export does not, mirroring how report
    /// serialization is already outside the per-cell wall-clock.
    #[must_use]
    pub fn run_instrumented(&self, workload: &Workload) -> (RunStats, MetricsRecorder) {
        let (stats, obs) = if workload.processors < HEAP_CROSSOVER {
            Runner::<HeapQueue<Ev>>::new(self.topology, self.config, workload).run()
        } else {
            Runner::<WheelQueue<Ev>>::new(self.topology, self.config, workload).run()
        };
        (
            stats,
            MetricsRecorder {
                obs,
                wait_cycles: workload.wait_cycles,
                toggle_cost: self.config.toggle_cost,
            },
        )
    }
}

/// A run's unfrozen metric recorder (see [`Simulator::run_instrumented`]).
/// Without the `obs` feature this holds the zero-sized inert recorder
/// and [`MetricsRecorder::finish`] returns `None`.
#[derive(Debug)]
pub struct MetricsRecorder {
    obs: SimObs,
    wait_cycles: u64,
    toggle_cost: u64,
}

impl MetricsRecorder {
    /// Freezes the recorder into the run's metrics snapshot.
    #[must_use]
    pub fn finish(self) -> Option<cnet_obs::MetricsSnapshot> {
        self.obs.finish(self.wait_cycles, self.toggle_cost)
    }
}

struct Runner<'a, Q> {
    config: SimConfig,
    workload: &'a Workload,
    queue: Q,
    /// Dense per-node toggle state, indexed by `NodeId::index`.
    toggles: Vec<cnet_topology::BalancerState>,
    /// Per-node prisms (empty vector when the config has none).
    prisms: Vec<Option<Prism>>,
    /// Locks `0..node_count` guard toggles; locks
    /// `node_count..node_count + output_width` guard counters.
    locks: LockBank,
    /// First counter lock in `locks`.
    counter_lock_base: usize,
    counters: Vec<u64>,
    output_width: u64,
    procs: Vec<Proc>,
    rng: SimRng,
    /// Separate RNG stream for open-loop arrival gaps (see
    /// [`ARRIVAL_STREAM`]); never drawn from in closed-loop runs.
    arrival_rng: SimRng,
    /// Inter-arrival gaps for `ArrivalProcess::Trace`, else empty.
    trace_gaps: Vec<u64>,
    checker: OnlineChecker,
    stamp: u32,
    started_ops: usize,
    operations: Vec<Operation>,
    completed_by: Vec<usize>,
    toggle_count: u64,
    toggle_wait_total: u64,
    diffraction_pairs: u64,
    node_visits: u64,
    node_wait_total: u64,
    max_lock_queue: u64,
    sim_time: u64,
    /// Flat routing table: output `out` of node `i` is
    /// `routes[route_base[i] + out]`.
    routes: Vec<Route>,
    route_base: Vec<u32>,
    /// Fabric queue FIFO state; an empty bank on the degenerate
    /// fabric, whose wires never queue.
    fabric_locks: LockBank,
    /// Per-fabric-queue service cycles / drop-tail capacities,
    /// parallel to `fabric_locks`.
    fabric_service: Vec<u64>,
    fabric_capacity: Vec<u32>,
    /// Per-route queue paths: route `r` traverses
    /// `fabric_stage[fabric_stage_base[r]..fabric_stage_base[r + 1]]`.
    /// Empty on the degenerate fabric — the flag `depart()` branches
    /// on.
    fabric_stage: Vec<u32>,
    fabric_stage_base: Vec<u32>,
    fabric_stats: FabricStats,
    /// Metric recorder — zero-sized and inert without the `obs`
    /// feature, so the hot loop keeps its layout and speed.
    obs: SimObs,
}

fn mesh_cell(index: usize, side: usize) -> (i64, i64) {
    ((index % side) as i64, ((index / side) % side) as i64)
}

/// Extra wire cost from mesh distance between two homes.
fn hop_cost(placement: Placement, from: (i64, i64), to: (i64, i64)) -> u64 {
    match placement {
        Placement::Uniform => 0,
        Placement::Mesh { per_hop, .. } => {
            let d = (from.0 - to.0).unsigned_abs() + (from.1 - to.1).unsigned_abs();
            per_hop * d
        }
    }
}

/// The farthest ahead of "now" any single schedule can land, from the
/// run's configuration — the bucket-wheel horizon. Saturating: an
/// astronomically large parameter simply overflows into the queue's
/// heap fallback.
fn schedule_horizon(config: &SimConfig, workload: &Workload, trace_gaps: &[u64]) -> u64 {
    let mesh_max = match config.placement {
        Placement::Uniform => 0,
        Placement::Mesh { side, per_hop } => per_hop.saturating_mul(2 * (side.max(1) as u64 - 1)),
    };
    let prism_max = config
        .prism
        .map_or(0, |p| p.spin_window.saturating_add(p.pair_cost));
    let arrival_max = match workload.arrival {
        ArrivalProcess::Closed => 0,
        ArrivalProcess::Open { mean_gap } => mean_gap.saturating_mul(2),
        ArrivalProcess::Bursty { gap, .. } => gap,
        ArrivalProcess::Trace { .. } => trace_gaps.iter().copied().max().unwrap_or(0),
    };
    // the farthest a fabric queue or retry can push one schedule: a
    // silent-drop retransmission waits the detection timeout
    // (backoff_cap) plus the capped backoff
    let fabric_max = if config.fabric.is_degenerate() {
        0
    } else {
        config
            .fabric
            .link
            .service
            .saturating_add(config.fabric.switch.service)
            .saturating_add(config.fabric.retry.backoff_cap.saturating_mul(2))
    };
    let step = [
        config.fabric.link.delay,
        config.fabric.link.jitter,
        config.toggle_cost,
        config.counter_cost,
        workload.wait_cycles,
        prism_max,
        mesh_max,
        arrival_max,
        fabric_max,
        1,
    ]
    .iter()
    .fold(0u64, |acc, &x| acc.saturating_add(x));
    // processors cover the initial start stagger at times 0..n
    step.max(workload.processors as u64)
}

impl<'a, Q: Queue<Ev>> Runner<'a, Q> {
    fn new(topology: &'a Topology, config: SimConfig, workload: &'a Workload) -> Self {
        let node_count = topology.node_count();
        let width = topology.output_width();

        // mesh homes (identity cost under uniform placement)
        let node_home = |i: usize| match config.placement {
            Placement::Uniform => (0, 0),
            Placement::Mesh { side, .. } => mesh_cell(i, side.max(1)),
        };
        let counter_home = |c: usize| match config.placement {
            Placement::Uniform => (0, 0),
            Placement::Mesh { side, .. } => mesh_cell(c + node_count, side.max(1)),
        };

        // flatten the wiring into the routing table
        let mut route_base = vec![0u32; node_count + 1];
        for id in topology.iter_nodes() {
            route_base[id.index() + 1] = topology.fan_out(id) as u32;
        }
        for i in 0..node_count {
            route_base[i + 1] += route_base[i];
        }
        let mut routes = vec![Route { target: 0, cost: 0 }; route_base[node_count] as usize];
        for id in topology.iter_nodes() {
            let from = node_home(id.index());
            for out in 0..topology.fan_out(id) {
                let (target, to) = match topology.output_wire(id, out) {
                    WireEnd::Node { node, .. } => (node.index() as u32, node_home(node.index())),
                    WireEnd::Counter { index } => (index as u32 | COUNTER_BIT, counter_home(index)),
                };
                routes[route_base[id.index()] as usize + out] = Route {
                    target,
                    cost: config.fabric.link.delay + hop_cost(config.placement, from, to),
                };
            }
        }

        let mut prisms: Vec<Option<Prism>> = Vec::new();
        if let Some(p) = config.prism {
            prisms.resize(node_count, None);
            for id in topology.iter_nodes() {
                // prisms only make sense on binary balancers
                if topology.fan_out(id) == 2 {
                    prisms[id.index()] = Some(Prism::new(p.slots_at_layer(topology.layer_of(id))));
                }
            }
        }

        // Fabric queue plan. The degenerate fabric gets *no* queues
        // (`fabric_stage_base` stays empty) — `depart()` branches on
        // that and takes the exact legacy wire path, RNG draw for RNG
        // draw. Non-degenerate fabrics give every route a queue path:
        // the shared switch tier (per the shape), then the
        // destination's link queue; a Mesh wire has only its own
        // private queue.
        let fabric = config.fabric;
        let route_count = route_base[node_count] as usize;
        let mut fabric_service: Vec<u64> = Vec::new();
        let mut fabric_capacity: Vec<u32> = Vec::new();
        let mut fabric_stage: Vec<u32> = Vec::new();
        let mut fabric_stage_base: Vec<u32> = Vec::new();
        if !fabric.is_degenerate() {
            fabric_stage_base.push(0);
            if fabric.shape == FabricShape::Mesh {
                for _ in 0..route_count {
                    let q = fabric_service.len() as u32;
                    fabric_service.push(fabric.link.service);
                    fabric_capacity.push(fabric.link.capacity);
                    fabric_stage.push(q);
                    fabric_stage_base.push(fabric_stage.len() as u32);
                }
            } else {
                // per-destination link queues: nodes first, counters
                // after
                let dest_count = node_count + width;
                for _ in 0..dest_count {
                    fabric_service.push(fabric.link.service);
                    fabric_capacity.push(fabric.link.capacity);
                }
                // the shared switch tier
                let first_switch = dest_count as u32;
                let depth = topology.depth();
                let mut node_stage = vec![0u32; node_count];
                if fabric.shape == FabricShape::PerStage {
                    for id in topology.iter_nodes() {
                        node_stage[id.index()] = topology.layer_of(id) as u32 - 1;
                    }
                }
                let switch_count = match fabric.shape {
                    FabricShape::OneBigSwitch => 1,
                    // one switch per network layer, plus the counter
                    // stage past the last layer
                    FabricShape::PerStage => depth + 1,
                    FabricShape::TwoTier { spines } => spines as usize,
                    FabricShape::Mesh => unreachable!("handled above"),
                };
                for _ in 0..switch_count {
                    fabric_service.push(fabric.switch.service);
                    fabric_capacity.push(fabric.switch.capacity);
                }
                for (r, route) in routes.iter().enumerate() {
                    let dest_q = if route.target & COUNTER_BIT == 0 {
                        route.target
                    } else {
                        node_count as u32 + (route.target & !COUNTER_BIT)
                    };
                    let switch_q = first_switch
                        + match fabric.shape {
                            FabricShape::OneBigSwitch => 0,
                            FabricShape::PerStage => {
                                if route.target & COUNTER_BIT == 0 {
                                    node_stage[route.target as usize]
                                } else {
                                    depth as u32
                                }
                            }
                            FabricShape::TwoTier { spines } => r as u32 % spines,
                            FabricShape::Mesh => unreachable!("handled above"),
                        };
                    fabric_stage.push(switch_q);
                    fabric_stage.push(dest_q);
                    fabric_stage_base.push(fabric_stage.len() as u32);
                }
            }
        }

        // trace-replay gaps, read once per run; `Backend::try_run`
        // validated the file, so a failure here is a caller skipping
        // validation (or a race on the file between the two reads)
        let trace_gaps = match &workload.arrival {
            ArrivalProcess::Trace { path } => ArrivalProcess::load_trace(path)
                .expect("trace workload must be validated before running"),
            _ => Vec::new(),
        };

        // Closed loop: one slot per re-injecting processor, as always.
        // Open loop: every arriving token is its own slot (several from
        // the same logical client can be in flight at once); token `i`
        // borrows processor `i mod n`'s delayed flag and input wire.
        let token_slots = if workload.processors == 0 {
            0
        } else if workload.is_open_loop() {
            workload.total_ops
        } else {
            workload.processors
        };
        assert!(
            u32::try_from(token_slots).is_ok(),
            "too many tokens for the event encoding"
        );
        let procs = (0..token_slots)
            .map(|slot| {
                let client = if workload.is_open_loop() {
                    slot % workload.processors
                } else {
                    slot
                };
                let input = client % topology.input_width();
                Proc {
                    delayed: workload.is_delayed(client),
                    input: input as u32,
                    entry: topology.input(input).node.index() as u32,
                    op_start: 0,
                    arrive_time: 0,
                    hop_route: 0,
                    hop_stage: 0,
                    attempts: 0,
                    hop_depart: 0,
                }
            })
            .collect();

        Runner {
            config,
            workload,
            queue: Q::with_horizon(
                schedule_horizon(&config, workload, &trace_gaps),
                token_slots,
            ),
            toggles: toggles_for(topology),
            prisms,
            locks: LockBank::new(node_count + width, token_slots),
            counter_lock_base: node_count,
            counters: vec![0; width],
            output_width: width as u64,
            procs,
            rng: SimRng::seed_from_u64(config.seed),
            arrival_rng: SimRng::seed_from_u64(config.seed ^ ARRIVAL_STREAM),
            trace_gaps,
            checker: OnlineChecker::new(),
            stamp: 0,
            started_ops: 0,
            operations: Vec::with_capacity(workload.total_ops),
            completed_by: Vec::with_capacity(workload.total_ops),
            toggle_count: 0,
            toggle_wait_total: 0,
            diffraction_pairs: 0,
            node_visits: 0,
            node_wait_total: 0,
            max_lock_queue: 0,
            sim_time: 0,
            routes,
            route_base,
            fabric_locks: LockBank::new(fabric_service.len(), token_slots),
            fabric_service,
            fabric_capacity,
            fabric_stage,
            fabric_stage_base,
            fabric_stats: FabricStats::default(),
            obs: SimObs::new(node_count, workload.total_ops),
        }
    }

    #[inline]
    fn push(&mut self, time: u64, ev: Ev) {
        self.queue.push(time, ev);
        if self.obs.on_push() {
            self.obs.record_depth(self.queue.len() as u64);
        }
    }

    fn run(mut self) -> (RunStats, SimObs) {
        if self.workload.is_open_loop() {
            // arrivals chain lazily: each StartOp schedules the next
            if !self.procs.is_empty() && self.workload.total_ops > 0 {
                self.push(0, Ev::StartOp { proc: 0 });
            }
        } else {
            for p in 0..self.workload.processors {
                self.push(p as u64, Ev::StartOp { proc: p as u32 });
            }
        }
        while let Some((time, ev)) = self.queue.pop() {
            // pops are globally time-ordered, so the last popped time
            // is the maximum
            self.sim_time = time;
            self.handle(time, ev);
        }
        let stats = RunStats {
            operations: self.operations,
            completed_by: self.completed_by,
            nonlinearizable: self.checker.finish(),
            output_counts: self.counters.iter().copied().collect::<OutputCounts>(),
            sim_time: self.sim_time,
            toggle_count: self.toggle_count,
            toggle_wait_total: self.toggle_wait_total,
            diffraction_pairs: self.diffraction_pairs,
            node_visits: self.node_visits,
            node_wait_total: self.node_wait_total,
            max_lock_queue: self.max_lock_queue,
            fabric: self.fabric_stats,
            metrics: None,
        };
        (stats, self.obs)
    }

    #[inline]
    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::StartOp { proc } => self.start_op(now, proc),
            Ev::ArriveNode { proc, node } => self.arrive_node(now, proc, node),
            Ev::ToggleDone { proc, node } => self.toggle_done(now, proc, node),
            Ev::PrismTimeout {
                proc,
                node,
                slot,
                stamp,
            } => self.prism_timeout(now, proc, node, slot, stamp),
            Ev::FabricSend { proc } => self.fabric_send(now, proc),
            Ev::FabricArrive { proc } => self.fabric_arrive(now, proc),
            Ev::FabricServe { proc } => self.fabric_serve(now, proc),
            Ev::ArriveCounter { proc, counter } => self.arrive_counter(now, proc, counter),
            Ev::CounterDone { proc, counter } => self.counter_done(now, proc, counter),
        }
    }

    fn start_op(&mut self, now: u64, proc: u32) {
        if self.workload.is_open_loop() {
            // schedule the next token's arrival before serving this one
            let next = proc as usize + 1;
            if next < self.workload.total_ops {
                let gap = self.arrival_gap(next);
                self.push(now + gap, Ev::StartOp { proc: next as u32 });
            }
        }
        if self.started_ops >= self.workload.total_ops {
            return; // quota reached: this processor retires
        }
        self.started_ops += 1;
        let p = &mut self.procs[proc as usize];
        p.op_start = now;
        let entry = p.entry;
        self.push(now, Ev::ArriveNode { proc, node: entry });
    }

    /// Cycles between token `token - 1`'s arrival and token `token`'s,
    /// under the workload's open-loop arrival process.
    fn arrival_gap(&mut self, token: usize) -> u64 {
        match self.workload.arrival {
            ArrivalProcess::Closed => 0,
            ArrivalProcess::Open { mean_gap } => {
                if mean_gap == 0 {
                    0
                } else {
                    self.arrival_rng.inclusive(mean_gap.saturating_mul(2))
                }
            }
            ArrivalProcess::Bursty { burst, gap } => {
                if token.is_multiple_of(burst.max(1) as usize) {
                    gap
                } else {
                    0
                }
            }
            ArrivalProcess::Trace { .. } => {
                // token k replays recorded gap k-1, cycling when the
                // run outlives the recording
                self.trace_gaps[(token - 1) % self.trace_gaps.len()]
            }
        }
    }

    fn arrive_node(&mut self, now: u64, proc: u32, node: u32) {
        self.procs[proc as usize].arrive_time = now;
        // prism front-end first, if this node has one
        if !self.prisms.is_empty() {
            if let Some(slots) = self.prisms[node as usize].as_ref().map(Prism::slot_count) {
                let slot = self.rng.below(slots as u64) as usize;
                self.stamp = self.stamp.wrapping_add(1);
                let stamp = self.stamp;
                let collision = self.prisms[node as usize]
                    .as_mut()
                    .expect("checked")
                    .visit(slot, proc, stamp);
                match collision {
                    Some(occupant) => {
                        // Diffraction: the waiting processor takes
                        // output 0, the arriving one output 1; the
                        // toggle is untouched. The pair leaves after
                        // `pair_cost`.
                        let pair_cost = self.config.prism.expect("prism configured").pair_cost;
                        let occupant_wait = now - self.procs[occupant.proc as usize].arrive_time;
                        self.diffraction_pairs += 1;
                        self.node_visits += 2;
                        self.node_wait_total += occupant_wait;
                        self.obs.diffraction(node as usize, occupant_wait);
                        // the arriver itself waits only pair_cost
                        let depart = now + pair_cost;
                        self.depart(depart, occupant.proc, node, 0);
                        self.depart(depart, proc, node, 1);
                    }
                    None => {
                        let window = self.config.prism.expect("prism configured").spin_window;
                        self.push(
                            now + window,
                            Ev::PrismTimeout {
                                proc,
                                node,
                                slot: slot as u32,
                                stamp,
                            },
                        );
                    }
                }
                return;
            }
        }
        self.request_lock(now, proc, node);
    }

    fn prism_timeout(&mut self, now: u64, proc: u32, node: u32, slot: u32, stamp: u32) {
        let still_waiting = self.prisms[node as usize]
            .as_mut()
            .expect("timeout only scheduled for prism nodes")
            .timeout(slot as usize, stamp);
        if still_waiting {
            // fall through to the toggle lock
            self.request_lock(now, proc, node);
        }
    }

    #[inline]
    fn request_lock(&mut self, now: u64, proc: u32, node: u32) {
        if self.locks.acquire(node as usize, proc) {
            self.push(now + self.config.toggle_cost, Ev::ToggleDone { proc, node });
        } else {
            let depth = u64::from(self.locks.queue_len(node as usize));
            self.max_lock_queue = self.max_lock_queue.max(depth);
        }
        // otherwise the processor spins in the FIFO queue; ToggleDone
        // for it will be scheduled by the releasing holder
    }

    fn toggle_done(&mut self, now: u64, proc: u32, node: u32) {
        let wait = now - self.procs[proc as usize].arrive_time;
        self.toggle_count += 1;
        self.toggle_wait_total += wait;
        self.node_visits += 1;
        self.node_wait_total += wait;
        self.obs.toggle(node as usize, wait);
        let out = self.toggles[node as usize].route();
        if let Some(next_holder) = self.locks.release(node as usize) {
            self.push(
                now + self.config.toggle_cost,
                Ev::ToggleDone {
                    proc: next_holder,
                    node,
                },
            );
        }
        self.depart(now, proc, node, out);
    }

    /// Sends a processor down output `out` of `node` at time `t`:
    /// schedules its arrival at the next node or counter after the wire
    /// latency plus any injected delay ("waits W cycles after
    /// traversing a node in the net").
    #[inline]
    fn depart(&mut self, t: u64, proc: u32, node: u32, out: usize) {
        let wait = match self.workload.wait_mode {
            WaitMode::Fixed => {
                if self.procs[proc as usize].delayed {
                    self.workload.wait_cycles
                } else {
                    0
                }
            }
            WaitMode::UniformRandom => {
                if self.workload.wait_cycles == 0 {
                    0
                } else {
                    self.rng.inclusive(self.workload.wait_cycles)
                }
            }
        };
        let route_idx = self.route_base[node as usize] as usize + out;
        if self.fabric_stage_base.is_empty() {
            // degenerate fabric: the legacy flat wire, draw for draw —
            // the golden-trace suite pins this path bit-identically
            let jitter = if self.config.fabric.link.jitter == 0 {
                0
            } else {
                self.rng.inclusive(self.config.fabric.link.jitter)
            };
            let route = self.routes[route_idx];
            self.obs.wire(jitter + wait + route.cost);
            let arrival = t + jitter + wait + route.cost;
            if route.target & COUNTER_BIT == 0 {
                self.push(
                    arrival,
                    Ev::ArriveNode {
                        proc,
                        node: route.target,
                    },
                );
            } else {
                self.push(
                    arrival,
                    Ev::ArriveCounter {
                        proc,
                        counter: route.target & !COUNTER_BIT,
                    },
                );
            }
            return;
        }
        // fabric path: the injected wait W is spent at the node before
        // the first transmission attempt; jitter is re-drawn per
        // attempt inside `fabric_send`
        let p = &mut self.procs[proc as usize];
        p.hop_route = route_idx as u32;
        p.hop_stage = 0;
        p.attempts = 0;
        p.hop_depart = t;
        self.push(t + wait, Ev::FabricSend { proc });
    }

    /// One transmission attempt of `proc`'s current hop: the loss
    /// draw, then per-attempt jitter and the propagation delay toward
    /// the hop's first fabric queue.
    fn fabric_send(&mut self, now: u64, proc: u32) {
        let link = self.config.fabric.link;
        self.fabric_stats.attempts += 1;
        if link.loss_per_million > 0 && self.rng.below(1_000_000) < u64::from(link.loss_per_million)
        {
            self.fabric_stats.loss_drops += 1;
            if self.fail_hop(now, proc, false) {
                return;
            }
            // attempt budget exhausted: force the delivery through
        }
        let jitter = if link.jitter == 0 {
            0
        } else {
            self.rng.inclusive(link.jitter)
        };
        let cost = self.routes[self.procs[proc as usize].hop_route as usize].cost;
        self.push(now + jitter + cost, Ev::FabricArrive { proc });
    }

    /// Registers a failed attempt (a loss or a refused enqueue) on
    /// `proc`'s current hop and schedules the retransmission: capped
    /// exponential backoff, plus the `backoff_cap` detection timeout
    /// when the failure was silent (`nacked == false`). Returns
    /// `false` when the per-hop attempt budget is exhausted — the
    /// caller must then force the token through so no workload can
    /// livelock on an unlucky stream.
    fn fail_hop(&mut self, now: u64, proc: u32, nacked: bool) -> bool {
        let retry = self.config.fabric.retry;
        let p = &mut self.procs[proc as usize];
        p.attempts += 1;
        if p.attempts >= retry.max_attempts {
            self.fabric_stats.forced_deliveries += 1;
            return false;
        }
        let backoff = retry.backoff(p.attempts);
        let delay = if nacked {
            backoff
        } else {
            retry.backoff_cap.saturating_add(backoff)
        };
        self.push(now + delay, Ev::FabricSend { proc });
        true
    }

    /// The token reaches its current fabric queue stage: drop-tail /
    /// NACK check against the queue's capacity, then FIFO admission.
    fn fabric_arrive(&mut self, now: u64, proc: u32) {
        let p = &self.procs[proc as usize];
        let base = self.fabric_stage_base[p.hop_route as usize] as usize;
        let q = self.fabric_stage[base + p.hop_stage as usize] as usize;
        let cap = self.fabric_capacity[q];
        if cap > 0 && self.fabric_locks.occupancy(q) >= cap {
            if self.config.fabric.backpressure {
                // NACK: the sender learns immediately and backs off
                self.fabric_stats.nack_retries += 1;
                self.obs.fabric_nack(q);
                if self.fail_hop(now, proc, true) {
                    return;
                }
            } else {
                // drop-tail: the token vanishes; the sender only
                // notices after a detection timeout
                self.fabric_stats.full_drops += 1;
                self.obs.fabric_drop(q);
                if self.fail_hop(now, proc, false) {
                    return;
                }
            }
            // budget exhausted: admit past the bound (and count it)
        }
        if self.fabric_locks.acquire(q, proc) {
            self.push(now + self.fabric_service[q], Ev::FabricServe { proc });
        }
        // otherwise queued FIFO; FabricServe is scheduled on release
        let depth = u64::from(self.fabric_locks.occupancy(q));
        self.fabric_stats.max_queue_depth = self.fabric_stats.max_queue_depth.max(depth);
        self.obs.fabric_depth(q, depth);
    }

    /// The queue head finishes service: hand the queue to the next
    /// waiter, then advance this token to the next stage or deliver it
    /// to its destination node/counter.
    fn fabric_serve(&mut self, now: u64, proc: u32) {
        let route_idx = self.procs[proc as usize].hop_route as usize;
        let stage = self.procs[proc as usize].hop_stage as usize;
        let base = self.fabric_stage_base[route_idx] as usize;
        let stages = self.fabric_stage_base[route_idx + 1] as usize - base;
        let q = self.fabric_stage[base + stage] as usize;
        self.obs.fabric_served(q);
        if let Some(next) = self.fabric_locks.release(q) {
            self.push(now + self.fabric_service[q], Ev::FabricServe { proc: next });
        }
        if stage + 1 < stages {
            self.procs[proc as usize].hop_stage += 1;
            self.push(now, Ev::FabricArrive { proc });
            return;
        }
        // delivered: record the hop's true wire latency and hand the
        // token to its destination
        let route = self.routes[route_idx];
        self.obs.wire(now - self.procs[proc as usize].hop_depart);
        if route.target & COUNTER_BIT == 0 {
            self.push(
                now,
                Ev::ArriveNode {
                    proc,
                    node: route.target,
                },
            );
        } else {
            self.push(
                now,
                Ev::ArriveCounter {
                    proc,
                    counter: route.target & !COUNTER_BIT,
                },
            );
        }
    }

    fn arrive_counter(&mut self, now: u64, proc: u32, counter: u32) {
        if self.config.counter_cost == 0 {
            self.counter_done(now, proc, counter);
            return;
        }
        if self
            .locks
            .acquire(self.counter_lock_base + counter as usize, proc)
        {
            self.push(
                now + self.config.counter_cost,
                Ev::CounterDone { proc, counter },
            );
        }
        // otherwise queued; CounterDone is scheduled on release
    }

    fn counter_done(&mut self, now: u64, proc: u32, counter: u32) {
        if self.config.counter_cost > 0 {
            if let Some(next) = self
                .locks
                .release(self.counter_lock_base + counter as usize)
            {
                self.push(
                    now + self.config.counter_cost,
                    Ev::CounterDone {
                        proc: next,
                        counter,
                    },
                );
            }
        }
        let value = u64::from(counter) + self.output_width * self.counters[counter as usize];
        self.counters[counter as usize] += 1;
        let token = self.operations.len();
        // under an open-loop arrival the slot id is the token index;
        // attribute the completion to the logical client behind it
        let client = if self.workload.is_open_loop() {
            proc as usize % self.workload.processors
        } else {
            proc as usize
        };
        self.completed_by.push(client);
        let op = Operation {
            token,
            input: self.procs[proc as usize].input as usize,
            start: self.procs[proc as usize].op_start,
            end: now,
            counter: counter as usize,
            value,
        };
        self.operations.push(op);
        // completions arrive in nondecreasing `end` order (event pops
        // are time-ordered), which is exactly the streaming checker's
        // contract — the Definition 2.4 count is ready the moment the
        // run ends, with no end-of-run sort
        self.checker.observe(op);
        self.obs.op(op.start, op.end, op.value);
        // closed loop only: the next operation begins strictly after
        // this one's response, so a processor's successive operations
        // are ordered under Definition 2.4's strict precedence. Open
        // loops decouple arrival from completion — StartOp chaining
        // already drives the schedule.
        if !self.workload.is_open_loop() {
            self.push(now + 1, Ev::StartOp { proc });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::constructions;

    fn small_workload(processors: usize, delayed: u32, wait: u64, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, delayed, wait)
        }
    }

    #[test]
    fn completes_exactly_total_ops() {
        let net = constructions::bitonic(4).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(1));
        let stats = sim.run(&small_workload(8, 0, 0, 200));
        assert_eq!(stats.operations.len(), 200);
        assert_eq!(stats.output_counts.total(), 200);
    }

    #[test]
    fn quiescent_counts_form_a_step() {
        for seed in 0..3 {
            let net = constructions::bitonic(8).unwrap();
            let sim = Simulator::new(&net, SimConfig::queue_lock(seed));
            let stats = sim.run(&small_workload(16, 50, 500, 300));
            assert!(stats.output_counts.is_step(), "{}", stats.output_counts);
        }
    }

    #[test]
    fn values_are_a_permutation_of_zero_to_n() {
        let net = constructions::bitonic(4).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(7));
        let stats = sim.run(&small_workload(8, 25, 100, 150));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..150).collect::<Vec<u64>>());
    }

    #[test]
    fn no_injected_delay_is_linearizable() {
        // The paper: "We also tested … W=0 and no non-linearizable
        // operations were detected."
        let net = constructions::bitonic(8).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(3));
        let stats = sim.run(&small_workload(32, 50, 0, 500));
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let net = constructions::bitonic(8).unwrap();
        let w = small_workload(16, 25, 1000, 400);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        let b = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations, b.operations);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn diffracting_tree_counts_correctly() {
        let net = constructions::counting_tree(8).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(11));
        let stats = sim.run(&small_workload(16, 0, 0, 300));
        assert_eq!(stats.operations.len(), 300);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..300).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
        assert!(
            stats.diffraction_pairs > 0,
            "prisms should see collisions at n=16"
        );
    }

    #[test]
    fn diffracting_tree_without_delays_is_linearizable() {
        let net = constructions::counting_tree(16).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(13));
        let stats = sim.run(&small_workload(32, 0, 0, 500));
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn large_delays_cause_violations_on_trees() {
        // High W with many delayed processors pushes (Tog+W)/Tog far
        // above 2, where the paper observed violations.
        let net = constructions::counting_tree(16).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(17));
        let stats = sim.run(&small_workload(64, 50, 10_000, 2000));
        assert!(
            stats.average_ratio(10_000) > 2.0,
            "ratio {}",
            stats.average_ratio(10_000)
        );
        assert!(
            stats.nonlinearizable_count() > 0,
            "expected violations at ratio {:.1}",
            stats.average_ratio(10_000)
        );
    }

    #[test]
    fn toggle_wait_grows_with_contention() {
        let net = constructions::bitonic(4).unwrap();
        let lo = Simulator::new(&net, SimConfig::queue_lock(1)).run(&small_workload(2, 0, 0, 200));
        let hi = Simulator::new(&net, SimConfig::queue_lock(1)).run(&small_workload(64, 0, 0, 200));
        assert!(
            hi.avg_toggle_wait() > lo.avg_toggle_wait(),
            "hi {} vs lo {}",
            hi.avg_toggle_wait(),
            lo.avg_toggle_wait()
        );
    }

    #[test]
    fn uniform_random_waits_stay_linearizable() {
        // The paper: "Another scenario in which every token waits a
        // random number of cycles between 0 and W was also simulated
        // and was observed to be completely linearizable."
        let net = constructions::bitonic(8).unwrap();
        let w = Workload {
            total_ops: 800,
            wait_mode: WaitMode::UniformRandom,
            ..Workload::paper(32, 0, 1000)
        };
        let stats = Simulator::new(&net, SimConfig::queue_lock(23)).run(&w);
        assert_eq!(stats.operations.len(), 800);
        // random symmetric jitter: violations should be absent or rare
        assert!(
            stats.nonlinearizable_ratio() < 0.01,
            "ratio {}",
            stats.nonlinearizable_ratio()
        );
    }

    #[test]
    fn single_processor_is_sequential() {
        let net = constructions::bitonic(4).unwrap();
        let stats =
            Simulator::new(&net, SimConfig::queue_lock(0)).run(&small_workload(1, 0, 0, 50));
        for (i, op) in stats.operations.iter().enumerate() {
            assert_eq!(op.value, i as u64, "sequential ops count in order");
        }
        assert_eq!(stats.nonlinearizable_count(), 0);
    }
}

#[cfg(test)]
mod counter_cost_tests {
    use super::*;
    use cnet_topology::constructions;

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, 0, 0)
        }
    }

    #[test]
    fn counter_cost_preserves_counting() {
        let net = constructions::bitonic(4).unwrap();
        let config = SimConfig {
            counter_cost: 50,
            ..SimConfig::queue_lock(3)
        };
        let stats = Simulator::new(&net, config).run(&wl(16, 400));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn central_counter_serializes() {
        // a serial line is the centralized-counter model: with a counter
        // cost, total time is at least ops * counter_cost
        let net = constructions::serial_line(1);
        let config = SimConfig {
            counter_cost: 100,
            ..SimConfig::queue_lock(1)
        };
        let stats = Simulator::new(&net, config).run(&wl(8, 100));
        assert!(stats.sim_time >= 100 * 100, "sim time {}", stats.sim_time);
        // …and it is linearizable: one counter, FIFO service
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn wide_network_beats_central_counter_under_contention() {
        let cost = 100;
        let central = constructions::serial_line(1);
        let central_stats = Simulator::new(
            &central,
            SimConfig {
                counter_cost: cost,
                ..SimConfig::queue_lock(1)
            },
        )
        .run(&wl(64, 1000));
        let net = constructions::bitonic(16).unwrap();
        let net_stats = Simulator::new(
            &net,
            SimConfig {
                counter_cost: cost,
                ..SimConfig::queue_lock(1)
            },
        )
        .run(&wl(64, 1000));
        assert!(
            net_stats.throughput() > central_stats.throughput(),
            "network {} vs central {}",
            net_stats.throughput(),
            central_stats.throughput()
        );
    }
}

#[cfg(test)]
mod mesh_tests {
    use super::*;
    use cnet_topology::constructions;

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, 0, 0)
        }
    }

    #[test]
    fn mesh_placement_counts_exactly() {
        let net = constructions::bitonic(8).unwrap();
        let config = SimConfig {
            placement: Placement::Mesh {
                side: 4,
                per_hop: 15,
            },
            ..SimConfig::queue_lock(5)
        };
        let stats = Simulator::new(&net, config).run(&wl(16, 400));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn mesh_distance_raises_latency() {
        let net = constructions::bitonic(16).unwrap();
        let flat = Simulator::new(&net, SimConfig::queue_lock(5)).run(&wl(8, 300));
        let meshed = Simulator::new(
            &net,
            SimConfig {
                placement: Placement::Mesh {
                    side: 8,
                    per_hop: 40,
                },
                ..SimConfig::queue_lock(5)
            },
        )
        .run(&wl(8, 300));
        assert!(
            meshed.mean_latency() > flat.mean_latency(),
            "mesh {} vs flat {}",
            meshed.mean_latency(),
            flat.mean_latency()
        );
    }

    #[test]
    fn mesh_skew_widens_c2_c1_and_can_violate() {
        // mesh distances make some paths structurally slower than
        // others, an organic (non-injected) source of c2/c1 spread
        let net = constructions::counting_tree(32).unwrap();
        let config = SimConfig {
            placement: Placement::Mesh {
                side: 3,
                per_hop: 600,
            },
            ..SimConfig::diffracting(7)
        };
        let stats = Simulator::new(&net, config).run(&wl(32, 3000));
        // counting still exact
        assert_eq!(stats.operations.len(), 3000);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..3000).collect::<Vec<u64>>());
        // the ratio is whatever it is; the run must simply be well-formed
        assert!(stats.sim_time > 0);
    }
}

#[cfg(test)]
mod degenerate_workload_tests {
    use super::*;
    use cnet_topology::constructions;

    #[test]
    fn zero_ops_completes_immediately() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 0,
            ..Workload::paper(4, 50, 100)
        });
        assert!(stats.operations.is_empty());
        assert_eq!(stats.nonlinearizable_count(), 0);
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn zero_processors_complete_nothing() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 100,
            ..Workload::paper(0, 0, 0)
        });
        assert!(stats.operations.is_empty());
    }

    #[test]
    fn more_processors_than_ops_is_fine() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 10,
            ..Workload::paper(64, 50, 10)
        });
        assert_eq!(stats.operations.len(), 10);
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use cnet_topology::constructions;

    fn open_wl(processors: usize, ops: usize, mean_gap: u64) -> Workload {
        Workload {
            total_ops: ops,
            arrival: ArrivalProcess::Open { mean_gap },
            ..Workload::paper(processors, 0, 0)
        }
    }

    #[test]
    fn open_loop_counts_exactly() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(9)).run(&open_wl(8, 300, 50));
        assert_eq!(stats.operations.len(), 300);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..300).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step(), "{}", stats.output_counts);
    }

    #[test]
    fn open_loop_is_reproducible() {
        let net = constructions::bitonic(8).unwrap();
        let w = open_wl(16, 400, 120);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        let b = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations, b.operations);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn open_loop_attributes_completions_to_clients() {
        let net = constructions::bitonic(4).unwrap();
        let w = open_wl(6, 120, 10);
        let stats = Simulator::new(&net, SimConfig::queue_lock(2)).run(&w);
        assert_eq!(stats.completed_by.len(), 120);
        assert!(stats.completed_by.iter().all(|&c| c < 6));
    }

    #[test]
    fn sparse_open_arrivals_behave_sequentially() {
        // gaps far larger than an op's span: every token completes
        // before the next arrives, so the history is linearizable
        let net = constructions::bitonic(4).unwrap();
        let cfg = SimConfig {
            fabric: crate::Fabric::degenerate(20, 0),
            ..SimConfig::queue_lock(3)
        };
        let w = Workload {
            total_ops: 100,
            arrival: ArrivalProcess::Bursty {
                burst: 1,
                gap: 1_000_000,
            },
            ..Workload::paper(4, 0, 0)
        };
        let stats = Simulator::new(&net, cfg).run(&w);
        assert_eq!(stats.operations.len(), 100);
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn bursty_arrivals_land_back_to_back() {
        let net = constructions::bitonic(4).unwrap();
        let w = Workload {
            total_ops: 64,
            arrival: ArrivalProcess::Bursty {
                burst: 8,
                gap: 50_000,
            },
            ..Workload::paper(8, 0, 0)
        };
        let stats = Simulator::new(&net, SimConfig::queue_lock(4)).run(&w);
        assert_eq!(stats.operations.len(), 64);
        // tokens of one burst overlap in flight; bursts are disjoint:
        // sim time must span at least the 7 inter-burst gaps
        assert!(stats.sim_time >= 7 * 50_000, "sim time {}", stats.sim_time);
    }

    #[test]
    fn open_loop_zero_gap_is_a_thundering_herd() {
        let net = constructions::bitonic(8).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(6)).run(&open_wl(4, 200, 0));
        assert_eq!(stats.operations.len(), 200);
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn open_loop_zero_processors_completes_nothing() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 50,
            arrival: ArrivalProcess::Open { mean_gap: 10 },
            ..Workload::paper(0, 0, 0)
        });
        assert!(stats.operations.is_empty());
    }

    #[test]
    fn closed_loop_field_matches_legacy_behaviour() {
        // the arrival field's Closed default must not perturb the
        // existing closed-loop stream: same seed, same trace as a
        // workload built before the field existed would produce
        let net = constructions::bitonic(8).unwrap();
        let w = Workload::paper(16, 25, 1000);
        let w = Workload {
            total_ops: 300,
            ..w
        };
        assert_eq!(w.arrival, ArrivalProcess::Closed);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations.len(), 300);
    }
}

#[cfg(test)]
mod fabric_tests {
    use super::*;
    use cnet_topology::{constructions, FabricShape, LinkSpec, RetryPolicy, SwitchSpec};

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, 0, 0)
        }
    }

    /// A queued fabric: finite per-queue service and capacity, a
    /// configurable loss rate, one shape per test.
    fn fabric(shape: FabricShape, loss_per_million: u32, backpressure: bool) -> crate::Fabric {
        crate::Fabric {
            shape,
            link: LinkSpec {
                delay: 20,
                jitter: 40,
                service: 8,
                capacity: 4,
                loss_per_million,
            },
            switch: SwitchSpec {
                service: 4,
                capacity: 8,
            },
            backpressure,
            retry: RetryPolicy {
                backoff_base: 16,
                backoff_cap: 256,
                max_attempts: 16,
            },
        }
    }

    fn run_shape(shape: FabricShape, loss: u32, backpressure: bool, ops: usize) -> RunStats {
        let net = constructions::bitonic(8).unwrap();
        let config = SimConfig {
            fabric: fabric(shape, loss, backpressure),
            ..SimConfig::queue_lock(0xFAB)
        };
        Simulator::new(&net, config).run(&wl(16, ops))
    }

    fn assert_counts_exactly(stats: &RunStats, ops: usize) {
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..ops as u64).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step(), "{}", stats.output_counts);
    }

    #[test]
    fn every_shape_counts_exactly() {
        for shape in [
            FabricShape::OneBigSwitch,
            FabricShape::PerStage,
            FabricShape::TwoTier { spines: 3 },
            FabricShape::Mesh,
        ] {
            let stats = run_shape(shape, 0, false, 400);
            assert_counts_exactly(&stats, 400);
            assert!(
                stats.fabric.attempts >= 400,
                "{shape:?}: attempts {}",
                stats.fabric.attempts
            );
        }
    }

    #[test]
    fn degenerate_fabric_records_no_fabric_stats() {
        let net = constructions::bitonic(8).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(0xFAB)).run(&wl(16, 200));
        assert_eq!(stats.fabric, crate::FabricStats::default());
        assert!(stats.summary(0).fabric.is_none());
    }

    #[test]
    fn loss_is_counted_and_no_token_vanishes() {
        // 5% loss: drops must be observed, yet every op still
        // completes with a unique value — retransmission never loses
        // or duplicates a token
        let stats = run_shape(FabricShape::OneBigSwitch, 50_000, false, 400);
        assert!(stats.fabric.loss_drops > 0, "{:?}", stats.fabric);
        assert!(
            stats.fabric.attempts > 400,
            "losses must force extra attempts: {:?}",
            stats.fabric
        );
        assert_counts_exactly(&stats, 400);
    }

    #[test]
    fn backpressure_nacks_instead_of_dropping() {
        let open = Workload {
            arrival: ArrivalProcess::Open { mean_gap: 1 },
            ..wl(64, 600)
        };
        let net = constructions::bitonic(8).unwrap();
        let tight = |backpressure| crate::Fabric {
            link: LinkSpec {
                capacity: 1,
                service: 60,
                ..fabric(FabricShape::OneBigSwitch, 0, backpressure).link
            },
            ..fabric(FabricShape::OneBigSwitch, 0, backpressure)
        };
        let nacked = Simulator::new(
            &net,
            SimConfig {
                fabric: tight(true),
                ..SimConfig::queue_lock(0xFAB)
            },
        )
        .run(&open);
        assert!(nacked.fabric.nack_retries > 0, "{:?}", nacked.fabric);
        assert_eq!(nacked.fabric.full_drops, 0, "{:?}", nacked.fabric);
        assert_counts_exactly(&nacked, 600);

        let dropped = Simulator::new(
            &net,
            SimConfig {
                fabric: tight(false),
                ..SimConfig::queue_lock(0xFAB)
            },
        )
        .run(&open);
        assert!(dropped.fabric.full_drops > 0, "{:?}", dropped.fabric);
        assert_eq!(dropped.fabric.nack_retries, 0, "{:?}", dropped.fabric);
        assert_counts_exactly(&dropped, 600);
    }

    #[test]
    fn refusal_accounting_balances() {
        // every refused attempt is either retried later or forced
        // through once the budget runs out; the counters must agree
        let stats = run_shape(FabricShape::PerStage, 20_000, false, 500);
        let refused = stats.fabric.loss_drops + stats.fabric.full_drops;
        assert_eq!(stats.fabric.refusals(), refused);
        assert!(stats.fabric.forced_deliveries <= refused);
        assert_eq!(
            stats.fabric.retries(),
            refused - stats.fabric.forced_deliveries
        );
        assert_counts_exactly(&stats, 500);
    }

    #[test]
    fn fabric_runs_are_reproducible() {
        let a = run_shape(FabricShape::TwoTier { spines: 2 }, 10_000, true, 300);
        let b = run_shape(FabricShape::TwoTier { spines: 2 }, 10_000, true, 300);
        assert_eq!(a.operations, b.operations);
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn queue_depth_telemetry_sees_contention() {
        let stats = run_shape(FabricShape::OneBigSwitch, 0, false, 400);
        assert!(
            stats.fabric.max_queue_depth > 1,
            "16 procs through one switch must queue: {:?}",
            stats.fabric
        );
    }

    #[test]
    fn exhausted_attempts_force_delivery() {
        // certain loss with a budget of 2 attempts: every token is
        // forced through on its second try, none are lost
        let net = constructions::bitonic(4).unwrap();
        let config = SimConfig {
            fabric: crate::Fabric {
                retry: RetryPolicy {
                    backoff_base: 8,
                    backoff_cap: 32,
                    max_attempts: 2,
                },
                ..fabric(FabricShape::OneBigSwitch, 1_000_000, false)
            },
            ..SimConfig::queue_lock(0xFAB)
        };
        let stats = Simulator::new(&net, config).run(&wl(8, 100));
        assert!(stats.fabric.forced_deliveries > 0, "{:?}", stats.fabric);
        assert_counts_exactly(&stats, 100);
    }
}

#[cfg(test)]
mod trace_arrival_tests {
    use super::*;
    use cnet_topology::constructions;

    fn trace_workload(path: &std::path::Path, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            arrival: ArrivalProcess::Trace {
                path: path.to_str().unwrap().to_string(),
            },
            ..Workload::paper(4, 0, 0)
        }
    }

    fn write_trace(name: &str, content: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("cnet-sim-trace-{name}-{}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn trace_arrivals_count_exactly_and_reproducibly() {
        let path = write_trace("basic", "0\n100\n100\n350\n400\n");
        let net = constructions::bitonic(4).unwrap();
        let w = trace_workload(&path, 60);
        let a = Simulator::new(&net, SimConfig::queue_lock(8)).run(&w);
        let b = Simulator::new(&net, SimConfig::queue_lock(8)).run(&w);
        assert_eq!(a.operations.len(), 60);
        let mut values: Vec<u64> = a.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..60).collect::<Vec<u64>>());
        assert!(a.output_counts.is_step());
        assert_eq!(a.operations, b.operations);
    }

    #[test]
    fn sparse_trace_gaps_pace_the_run() {
        // gaps of 100k cycles dominate every op span: sim time must
        // cover the replayed schedule's cycled extent
        let path = write_trace("sparse", "0\n100000\n200000\n");
        let net = constructions::bitonic(4).unwrap();
        let w = trace_workload(&path, 10);
        let stats = Simulator::new(&net, SimConfig::queue_lock(3)).run(&w);
        assert_eq!(stats.operations.len(), 10);
        // 9 inter-arrival gaps of 100_000 each
        assert!(stats.sim_time >= 900_000, "sim time {}", stats.sim_time);
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    #[should_panic(expected = "validated")]
    fn running_an_unvalidated_bad_trace_panics() {
        let net = constructions::bitonic(4).unwrap();
        let w = trace_workload(std::path::Path::new("/nonexistent/cnet-trace"), 10);
        let _ = Simulator::new(&net, SimConfig::queue_lock(1)).run(&w);
    }
}
