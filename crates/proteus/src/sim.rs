//! The discrete-event simulation engine.
//!
//! # Hot-loop layout
//!
//! The per-event handlers touch only flat, pre-sized vectors:
//!
//! * toggles in one dense `Vec<BalancerState>` (16 bytes per node);
//! * every FIFO lock (balancers *and* counters) in one [`LockBank`]
//!   threaded through a single per-processor `next` array — no
//!   per-lock heap buffers;
//! * wiring flattened into a routing table of `(target, fixed cost)`
//!   entries, where the fixed cost folds the link cost and the mesh
//!   hop distance computed once at construction — the topology graph
//!   is never consulted while events are in flight;
//! * events packed to `u32` fields so queue entries stay small.
//!
//! None of this changes what is simulated: event order, RNG draw
//! order, and therefore every statistic are bit-identical to the
//! straightforward implementation (the golden-trace tests pin this).

use cnet_timing::linearizability::OnlineChecker;
use cnet_timing::Operation;
use cnet_topology::{OutputCounts, Topology, WireEnd};

use crate::config::{ArrivalProcess, Placement, SimConfig, WaitMode, Workload};
use crate::node::{toggles_for, LockBank, Prism};
use crate::obs::SimObs;
use crate::queue::{HeapQueue, Queue, WheelQueue, HEAP_CROSSOVER};
use crate::rng::SimRng;
use crate::stats::RunStats;

/// The events a simulated processor can experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Begin the next counting operation (or retire if the quota is
    /// reached).
    StartOp { proc: u32 },
    /// Arrive at a balancer node.
    ArriveNode { proc: u32, node: u32 },
    /// Finish the balancer critical section: toggle, route, release.
    ToggleDone { proc: u32, node: u32 },
    /// A prism slot occupancy timed out without a collision.
    PrismTimeout {
        proc: u32,
        node: u32,
        slot: u32,
        stamp: u32,
    },
    /// Arrive at an output counter (and queue if it is busy).
    ArriveCounter { proc: u32, counter: u32 },
    /// The counter finishes serving this processor's fetch-and-inc.
    CounterDone { proc: u32, counter: u32 },
}

/// Per-processor simulation state.
#[derive(Debug, Clone)]
struct Proc {
    delayed: bool,
    input: u32,
    /// Entry node behind this processor's network input.
    entry: u32,
    op_start: u64,
    /// Arrival time at the node currently being visited (for `Tog`).
    arrive_time: u64,
}

/// High bit of a route target: set when the target is a counter.
const COUNTER_BIT: u32 = 1 << 31;

/// Seed perturbation for the arrival-schedule RNG stream. Open-loop
/// gaps draw from their own generator so the main stream (prism slots,
/// jitter, random waits) is untouched — closed-loop traces stay
/// bit-identical whether or not this stream exists.
const ARRIVAL_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// One precomputed wire: where output `out` of a node leads and what
/// the traversal costs before jitter and injected waits.
#[derive(Debug, Clone, Copy)]
struct Route {
    /// Destination node index, or counter index with [`COUNTER_BIT`]
    /// set.
    target: u32,
    /// `link_cost` plus the mesh hop cost between the two homes.
    cost: u64,
}

/// The deterministic discrete-event simulator.
///
/// See the [crate documentation](crate) for the machine model. A
/// `Simulator` is cheap to construct; all mutable state lives inside
/// [`Simulator::run`], so one simulator can run many workloads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    topology: &'a Topology,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given network and machine model.
    #[must_use]
    pub fn new(topology: &'a Topology, config: SimConfig) -> Self {
        Simulator { topology, config }
    }

    /// The simulated network.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The machine-model configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Runs the workload to completion and returns the measurements.
    ///
    /// Processors start staggered by one cycle each (ids `0..n` start
    /// at times `0..n`) and immediately begin a new operation whenever
    /// the previous one completes, until `workload.total_ops`
    /// operations have *started*; every started operation completes.
    ///
    /// The run loop is monomorphized per event-queue type (see
    /// [`crate::queue`]): small-`n` runs use a plain binary heap,
    /// large-`n` runs the bucket wheel. Both produce the identical
    /// `(time, push-order)` pop stream, so the choice is invisible in
    /// every statistic.
    #[must_use]
    pub fn run(&self, workload: &Workload) -> RunStats {
        let (mut stats, recorder) = self.run_instrumented(workload);
        stats.metrics = recorder.finish();
        stats
    }

    /// Like [`Simulator::run`], but hands the metric recorder back
    /// unfrozen so the caller can keep snapshot assembly out of its
    /// own timing window: the returned [`RunStats`] has `metrics:
    /// None`, and [`MetricsRecorder::finish`] builds the snapshot.
    /// The harness times cells around this call — recording stays
    /// inside the measurement, export does not, mirroring how report
    /// serialization is already outside the per-cell wall-clock.
    #[must_use]
    pub fn run_instrumented(&self, workload: &Workload) -> (RunStats, MetricsRecorder) {
        let (stats, obs) = if workload.processors < HEAP_CROSSOVER {
            Runner::<HeapQueue<Ev>>::new(self.topology, self.config, workload).run()
        } else {
            Runner::<WheelQueue<Ev>>::new(self.topology, self.config, workload).run()
        };
        (
            stats,
            MetricsRecorder {
                obs,
                wait_cycles: workload.wait_cycles,
                toggle_cost: self.config.toggle_cost,
            },
        )
    }
}

/// A run's unfrozen metric recorder (see [`Simulator::run_instrumented`]).
/// Without the `obs` feature this holds the zero-sized inert recorder
/// and [`MetricsRecorder::finish`] returns `None`.
#[derive(Debug)]
pub struct MetricsRecorder {
    obs: SimObs,
    wait_cycles: u64,
    toggle_cost: u64,
}

impl MetricsRecorder {
    /// Freezes the recorder into the run's metrics snapshot.
    #[must_use]
    pub fn finish(self) -> Option<cnet_obs::MetricsSnapshot> {
        self.obs.finish(self.wait_cycles, self.toggle_cost)
    }
}

struct Runner<'a, Q> {
    config: SimConfig,
    workload: &'a Workload,
    queue: Q,
    /// Dense per-node toggle state, indexed by `NodeId::index`.
    toggles: Vec<cnet_topology::BalancerState>,
    /// Per-node prisms (empty vector when the config has none).
    prisms: Vec<Option<Prism>>,
    /// Locks `0..node_count` guard toggles; locks
    /// `node_count..node_count + output_width` guard counters.
    locks: LockBank,
    /// First counter lock in `locks`.
    counter_lock_base: usize,
    counters: Vec<u64>,
    output_width: u64,
    procs: Vec<Proc>,
    rng: SimRng,
    /// Separate RNG stream for open-loop arrival gaps (see
    /// [`ARRIVAL_STREAM`]); never drawn from in closed-loop runs.
    arrival_rng: SimRng,
    checker: OnlineChecker,
    stamp: u32,
    started_ops: usize,
    operations: Vec<Operation>,
    completed_by: Vec<usize>,
    toggle_count: u64,
    toggle_wait_total: u64,
    diffraction_pairs: u64,
    node_visits: u64,
    node_wait_total: u64,
    max_lock_queue: u64,
    sim_time: u64,
    /// Flat routing table: output `out` of node `i` is
    /// `routes[route_base[i] + out]`.
    routes: Vec<Route>,
    route_base: Vec<u32>,
    /// Metric recorder — zero-sized and inert without the `obs`
    /// feature, so the hot loop keeps its layout and speed.
    obs: SimObs,
}

fn mesh_cell(index: usize, side: usize) -> (i64, i64) {
    ((index % side) as i64, ((index / side) % side) as i64)
}

/// Extra wire cost from mesh distance between two homes.
fn hop_cost(placement: Placement, from: (i64, i64), to: (i64, i64)) -> u64 {
    match placement {
        Placement::Uniform => 0,
        Placement::Mesh { per_hop, .. } => {
            let d = (from.0 - to.0).unsigned_abs() + (from.1 - to.1).unsigned_abs();
            per_hop * d
        }
    }
}

/// The farthest ahead of "now" any single schedule can land, from the
/// run's configuration — the bucket-wheel horizon. Saturating: an
/// astronomically large parameter simply overflows into the queue's
/// heap fallback.
fn schedule_horizon(config: &SimConfig, workload: &Workload) -> u64 {
    let mesh_max = match config.placement {
        Placement::Uniform => 0,
        Placement::Mesh { side, per_hop } => per_hop.saturating_mul(2 * (side.max(1) as u64 - 1)),
    };
    let prism_max = config
        .prism
        .map_or(0, |p| p.spin_window.saturating_add(p.pair_cost));
    let arrival_max = match workload.arrival {
        ArrivalProcess::Closed => 0,
        ArrivalProcess::Open { mean_gap } => mean_gap.saturating_mul(2),
        ArrivalProcess::Bursty { gap, .. } => gap,
    };
    let step = [
        config.link_cost,
        config.link_jitter,
        config.toggle_cost,
        config.counter_cost,
        workload.wait_cycles,
        prism_max,
        mesh_max,
        arrival_max,
        1,
    ]
    .iter()
    .fold(0u64, |acc, &x| acc.saturating_add(x));
    // processors cover the initial start stagger at times 0..n
    step.max(workload.processors as u64)
}

impl<'a, Q: Queue<Ev>> Runner<'a, Q> {
    fn new(topology: &'a Topology, config: SimConfig, workload: &'a Workload) -> Self {
        let node_count = topology.node_count();
        let width = topology.output_width();

        // mesh homes (identity cost under uniform placement)
        let node_home = |i: usize| match config.placement {
            Placement::Uniform => (0, 0),
            Placement::Mesh { side, .. } => mesh_cell(i, side.max(1)),
        };
        let counter_home = |c: usize| match config.placement {
            Placement::Uniform => (0, 0),
            Placement::Mesh { side, .. } => mesh_cell(c + node_count, side.max(1)),
        };

        // flatten the wiring into the routing table
        let mut route_base = vec![0u32; node_count + 1];
        for id in topology.iter_nodes() {
            route_base[id.index() + 1] = topology.fan_out(id) as u32;
        }
        for i in 0..node_count {
            route_base[i + 1] += route_base[i];
        }
        let mut routes = vec![Route { target: 0, cost: 0 }; route_base[node_count] as usize];
        for id in topology.iter_nodes() {
            let from = node_home(id.index());
            for out in 0..topology.fan_out(id) {
                let (target, to) = match topology.output_wire(id, out) {
                    WireEnd::Node { node, .. } => (node.index() as u32, node_home(node.index())),
                    WireEnd::Counter { index } => (index as u32 | COUNTER_BIT, counter_home(index)),
                };
                routes[route_base[id.index()] as usize + out] = Route {
                    target,
                    cost: config.link_cost + hop_cost(config.placement, from, to),
                };
            }
        }

        let mut prisms: Vec<Option<Prism>> = Vec::new();
        if let Some(p) = config.prism {
            prisms.resize(node_count, None);
            for id in topology.iter_nodes() {
                // prisms only make sense on binary balancers
                if topology.fan_out(id) == 2 {
                    prisms[id.index()] = Some(Prism::new(p.slots_at_layer(topology.layer_of(id))));
                }
            }
        }

        // Closed loop: one slot per re-injecting processor, as always.
        // Open loop: every arriving token is its own slot (several from
        // the same logical client can be in flight at once); token `i`
        // borrows processor `i mod n`'s delayed flag and input wire.
        let token_slots = if workload.processors == 0 {
            0
        } else if workload.is_open_loop() {
            workload.total_ops
        } else {
            workload.processors
        };
        assert!(
            u32::try_from(token_slots).is_ok(),
            "too many tokens for the event encoding"
        );
        let procs = (0..token_slots)
            .map(|slot| {
                let client = if workload.is_open_loop() {
                    slot % workload.processors
                } else {
                    slot
                };
                let input = client % topology.input_width();
                Proc {
                    delayed: workload.is_delayed(client),
                    input: input as u32,
                    entry: topology.input(input).node.index() as u32,
                    op_start: 0,
                    arrive_time: 0,
                }
            })
            .collect();

        Runner {
            config,
            workload,
            queue: Q::with_horizon(schedule_horizon(&config, workload), token_slots),
            toggles: toggles_for(topology),
            prisms,
            locks: LockBank::new(node_count + width, token_slots),
            counter_lock_base: node_count,
            counters: vec![0; width],
            output_width: width as u64,
            procs,
            rng: SimRng::seed_from_u64(config.seed),
            arrival_rng: SimRng::seed_from_u64(config.seed ^ ARRIVAL_STREAM),
            checker: OnlineChecker::new(),
            stamp: 0,
            started_ops: 0,
            operations: Vec::with_capacity(workload.total_ops),
            completed_by: Vec::with_capacity(workload.total_ops),
            toggle_count: 0,
            toggle_wait_total: 0,
            diffraction_pairs: 0,
            node_visits: 0,
            node_wait_total: 0,
            max_lock_queue: 0,
            sim_time: 0,
            routes,
            route_base,
            obs: SimObs::new(node_count, workload.total_ops),
        }
    }

    #[inline]
    fn push(&mut self, time: u64, ev: Ev) {
        self.queue.push(time, ev);
        if self.obs.on_push() {
            self.obs.record_depth(self.queue.len() as u64);
        }
    }

    fn run(mut self) -> (RunStats, SimObs) {
        if self.workload.is_open_loop() {
            // arrivals chain lazily: each StartOp schedules the next
            if !self.procs.is_empty() && self.workload.total_ops > 0 {
                self.push(0, Ev::StartOp { proc: 0 });
            }
        } else {
            for p in 0..self.workload.processors {
                self.push(p as u64, Ev::StartOp { proc: p as u32 });
            }
        }
        while let Some((time, ev)) = self.queue.pop() {
            // pops are globally time-ordered, so the last popped time
            // is the maximum
            self.sim_time = time;
            self.handle(time, ev);
        }
        let stats = RunStats {
            operations: self.operations,
            completed_by: self.completed_by,
            nonlinearizable: self.checker.finish(),
            output_counts: self.counters.iter().copied().collect::<OutputCounts>(),
            sim_time: self.sim_time,
            toggle_count: self.toggle_count,
            toggle_wait_total: self.toggle_wait_total,
            diffraction_pairs: self.diffraction_pairs,
            node_visits: self.node_visits,
            node_wait_total: self.node_wait_total,
            max_lock_queue: self.max_lock_queue,
            metrics: None,
        };
        (stats, self.obs)
    }

    #[inline]
    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::StartOp { proc } => self.start_op(now, proc),
            Ev::ArriveNode { proc, node } => self.arrive_node(now, proc, node),
            Ev::ToggleDone { proc, node } => self.toggle_done(now, proc, node),
            Ev::PrismTimeout {
                proc,
                node,
                slot,
                stamp,
            } => self.prism_timeout(now, proc, node, slot, stamp),
            Ev::ArriveCounter { proc, counter } => self.arrive_counter(now, proc, counter),
            Ev::CounterDone { proc, counter } => self.counter_done(now, proc, counter),
        }
    }

    fn start_op(&mut self, now: u64, proc: u32) {
        if self.workload.is_open_loop() {
            // schedule the next token's arrival before serving this one
            let next = proc as usize + 1;
            if next < self.workload.total_ops {
                let gap = self.arrival_gap(next);
                self.push(now + gap, Ev::StartOp { proc: next as u32 });
            }
        }
        if self.started_ops >= self.workload.total_ops {
            return; // quota reached: this processor retires
        }
        self.started_ops += 1;
        let p = &mut self.procs[proc as usize];
        p.op_start = now;
        let entry = p.entry;
        self.push(now, Ev::ArriveNode { proc, node: entry });
    }

    /// Cycles between token `token - 1`'s arrival and token `token`'s,
    /// under the workload's open-loop arrival process.
    fn arrival_gap(&mut self, token: usize) -> u64 {
        match self.workload.arrival {
            ArrivalProcess::Closed => 0,
            ArrivalProcess::Open { mean_gap } => {
                if mean_gap == 0 {
                    0
                } else {
                    self.arrival_rng.inclusive(mean_gap.saturating_mul(2))
                }
            }
            ArrivalProcess::Bursty { burst, gap } => {
                if token.is_multiple_of(burst.max(1) as usize) {
                    gap
                } else {
                    0
                }
            }
        }
    }

    fn arrive_node(&mut self, now: u64, proc: u32, node: u32) {
        self.procs[proc as usize].arrive_time = now;
        // prism front-end first, if this node has one
        if !self.prisms.is_empty() {
            if let Some(slots) = self.prisms[node as usize].as_ref().map(Prism::slot_count) {
                let slot = self.rng.below(slots as u64) as usize;
                self.stamp = self.stamp.wrapping_add(1);
                let stamp = self.stamp;
                let collision = self.prisms[node as usize]
                    .as_mut()
                    .expect("checked")
                    .visit(slot, proc, stamp);
                match collision {
                    Some(occupant) => {
                        // Diffraction: the waiting processor takes
                        // output 0, the arriving one output 1; the
                        // toggle is untouched. The pair leaves after
                        // `pair_cost`.
                        let pair_cost = self.config.prism.expect("prism configured").pair_cost;
                        let occupant_wait = now - self.procs[occupant.proc as usize].arrive_time;
                        self.diffraction_pairs += 1;
                        self.node_visits += 2;
                        self.node_wait_total += occupant_wait;
                        self.obs.diffraction(node as usize, occupant_wait);
                        // the arriver itself waits only pair_cost
                        let depart = now + pair_cost;
                        self.depart(depart, occupant.proc, node, 0);
                        self.depart(depart, proc, node, 1);
                    }
                    None => {
                        let window = self.config.prism.expect("prism configured").spin_window;
                        self.push(
                            now + window,
                            Ev::PrismTimeout {
                                proc,
                                node,
                                slot: slot as u32,
                                stamp,
                            },
                        );
                    }
                }
                return;
            }
        }
        self.request_lock(now, proc, node);
    }

    fn prism_timeout(&mut self, now: u64, proc: u32, node: u32, slot: u32, stamp: u32) {
        let still_waiting = self.prisms[node as usize]
            .as_mut()
            .expect("timeout only scheduled for prism nodes")
            .timeout(slot as usize, stamp);
        if still_waiting {
            // fall through to the toggle lock
            self.request_lock(now, proc, node);
        }
    }

    #[inline]
    fn request_lock(&mut self, now: u64, proc: u32, node: u32) {
        if self.locks.acquire(node as usize, proc) {
            self.push(now + self.config.toggle_cost, Ev::ToggleDone { proc, node });
        } else {
            let depth = u64::from(self.locks.queue_len(node as usize));
            self.max_lock_queue = self.max_lock_queue.max(depth);
        }
        // otherwise the processor spins in the FIFO queue; ToggleDone
        // for it will be scheduled by the releasing holder
    }

    fn toggle_done(&mut self, now: u64, proc: u32, node: u32) {
        let wait = now - self.procs[proc as usize].arrive_time;
        self.toggle_count += 1;
        self.toggle_wait_total += wait;
        self.node_visits += 1;
        self.node_wait_total += wait;
        self.obs.toggle(node as usize, wait);
        let out = self.toggles[node as usize].route();
        if let Some(next_holder) = self.locks.release(node as usize) {
            self.push(
                now + self.config.toggle_cost,
                Ev::ToggleDone {
                    proc: next_holder,
                    node,
                },
            );
        }
        self.depart(now, proc, node, out);
    }

    /// Sends a processor down output `out` of `node` at time `t`:
    /// schedules its arrival at the next node or counter after the wire
    /// latency plus any injected delay ("waits W cycles after
    /// traversing a node in the net").
    #[inline]
    fn depart(&mut self, t: u64, proc: u32, node: u32, out: usize) {
        let wait = match self.workload.wait_mode {
            WaitMode::Fixed => {
                if self.procs[proc as usize].delayed {
                    self.workload.wait_cycles
                } else {
                    0
                }
            }
            WaitMode::UniformRandom => {
                if self.workload.wait_cycles == 0 {
                    0
                } else {
                    self.rng.inclusive(self.workload.wait_cycles)
                }
            }
        };
        let jitter = if self.config.link_jitter == 0 {
            0
        } else {
            self.rng.inclusive(self.config.link_jitter)
        };
        let route = self.routes[self.route_base[node as usize] as usize + out];
        self.obs.wire(jitter + wait + route.cost);
        let arrival = t + jitter + wait + route.cost;
        if route.target & COUNTER_BIT == 0 {
            self.push(
                arrival,
                Ev::ArriveNode {
                    proc,
                    node: route.target,
                },
            );
        } else {
            self.push(
                arrival,
                Ev::ArriveCounter {
                    proc,
                    counter: route.target & !COUNTER_BIT,
                },
            );
        }
    }

    fn arrive_counter(&mut self, now: u64, proc: u32, counter: u32) {
        if self.config.counter_cost == 0 {
            self.counter_done(now, proc, counter);
            return;
        }
        if self
            .locks
            .acquire(self.counter_lock_base + counter as usize, proc)
        {
            self.push(
                now + self.config.counter_cost,
                Ev::CounterDone { proc, counter },
            );
        }
        // otherwise queued; CounterDone is scheduled on release
    }

    fn counter_done(&mut self, now: u64, proc: u32, counter: u32) {
        if self.config.counter_cost > 0 {
            if let Some(next) = self
                .locks
                .release(self.counter_lock_base + counter as usize)
            {
                self.push(
                    now + self.config.counter_cost,
                    Ev::CounterDone {
                        proc: next,
                        counter,
                    },
                );
            }
        }
        let value = u64::from(counter) + self.output_width * self.counters[counter as usize];
        self.counters[counter as usize] += 1;
        let token = self.operations.len();
        // under an open-loop arrival the slot id is the token index;
        // attribute the completion to the logical client behind it
        let client = if self.workload.is_open_loop() {
            proc as usize % self.workload.processors
        } else {
            proc as usize
        };
        self.completed_by.push(client);
        let op = Operation {
            token,
            input: self.procs[proc as usize].input as usize,
            start: self.procs[proc as usize].op_start,
            end: now,
            counter: counter as usize,
            value,
        };
        self.operations.push(op);
        // completions arrive in nondecreasing `end` order (event pops
        // are time-ordered), which is exactly the streaming checker's
        // contract — the Definition 2.4 count is ready the moment the
        // run ends, with no end-of-run sort
        self.checker.observe(op);
        self.obs.op(op.start, op.end, op.value);
        // closed loop only: the next operation begins strictly after
        // this one's response, so a processor's successive operations
        // are ordered under Definition 2.4's strict precedence. Open
        // loops decouple arrival from completion — StartOp chaining
        // already drives the schedule.
        if !self.workload.is_open_loop() {
            self.push(now + 1, Ev::StartOp { proc });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::constructions;

    fn small_workload(processors: usize, delayed: u32, wait: u64, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, delayed, wait)
        }
    }

    #[test]
    fn completes_exactly_total_ops() {
        let net = constructions::bitonic(4).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(1));
        let stats = sim.run(&small_workload(8, 0, 0, 200));
        assert_eq!(stats.operations.len(), 200);
        assert_eq!(stats.output_counts.total(), 200);
    }

    #[test]
    fn quiescent_counts_form_a_step() {
        for seed in 0..3 {
            let net = constructions::bitonic(8).unwrap();
            let sim = Simulator::new(&net, SimConfig::queue_lock(seed));
            let stats = sim.run(&small_workload(16, 50, 500, 300));
            assert!(stats.output_counts.is_step(), "{}", stats.output_counts);
        }
    }

    #[test]
    fn values_are_a_permutation_of_zero_to_n() {
        let net = constructions::bitonic(4).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(7));
        let stats = sim.run(&small_workload(8, 25, 100, 150));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..150).collect::<Vec<u64>>());
    }

    #[test]
    fn no_injected_delay_is_linearizable() {
        // The paper: "We also tested … W=0 and no non-linearizable
        // operations were detected."
        let net = constructions::bitonic(8).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(3));
        let stats = sim.run(&small_workload(32, 50, 0, 500));
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let net = constructions::bitonic(8).unwrap();
        let w = small_workload(16, 25, 1000, 400);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        let b = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations, b.operations);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn diffracting_tree_counts_correctly() {
        let net = constructions::counting_tree(8).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(11));
        let stats = sim.run(&small_workload(16, 0, 0, 300));
        assert_eq!(stats.operations.len(), 300);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..300).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
        assert!(
            stats.diffraction_pairs > 0,
            "prisms should see collisions at n=16"
        );
    }

    #[test]
    fn diffracting_tree_without_delays_is_linearizable() {
        let net = constructions::counting_tree(16).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(13));
        let stats = sim.run(&small_workload(32, 0, 0, 500));
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn large_delays_cause_violations_on_trees() {
        // High W with many delayed processors pushes (Tog+W)/Tog far
        // above 2, where the paper observed violations.
        let net = constructions::counting_tree(16).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(17));
        let stats = sim.run(&small_workload(64, 50, 10_000, 2000));
        assert!(
            stats.average_ratio(10_000) > 2.0,
            "ratio {}",
            stats.average_ratio(10_000)
        );
        assert!(
            stats.nonlinearizable_count() > 0,
            "expected violations at ratio {:.1}",
            stats.average_ratio(10_000)
        );
    }

    #[test]
    fn toggle_wait_grows_with_contention() {
        let net = constructions::bitonic(4).unwrap();
        let lo = Simulator::new(&net, SimConfig::queue_lock(1)).run(&small_workload(2, 0, 0, 200));
        let hi = Simulator::new(&net, SimConfig::queue_lock(1)).run(&small_workload(64, 0, 0, 200));
        assert!(
            hi.avg_toggle_wait() > lo.avg_toggle_wait(),
            "hi {} vs lo {}",
            hi.avg_toggle_wait(),
            lo.avg_toggle_wait()
        );
    }

    #[test]
    fn uniform_random_waits_stay_linearizable() {
        // The paper: "Another scenario in which every token waits a
        // random number of cycles between 0 and W was also simulated
        // and was observed to be completely linearizable."
        let net = constructions::bitonic(8).unwrap();
        let w = Workload {
            total_ops: 800,
            wait_mode: WaitMode::UniformRandom,
            ..Workload::paper(32, 0, 1000)
        };
        let stats = Simulator::new(&net, SimConfig::queue_lock(23)).run(&w);
        assert_eq!(stats.operations.len(), 800);
        // random symmetric jitter: violations should be absent or rare
        assert!(
            stats.nonlinearizable_ratio() < 0.01,
            "ratio {}",
            stats.nonlinearizable_ratio()
        );
    }

    #[test]
    fn single_processor_is_sequential() {
        let net = constructions::bitonic(4).unwrap();
        let stats =
            Simulator::new(&net, SimConfig::queue_lock(0)).run(&small_workload(1, 0, 0, 50));
        for (i, op) in stats.operations.iter().enumerate() {
            assert_eq!(op.value, i as u64, "sequential ops count in order");
        }
        assert_eq!(stats.nonlinearizable_count(), 0);
    }
}

#[cfg(test)]
mod counter_cost_tests {
    use super::*;
    use cnet_topology::constructions;

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, 0, 0)
        }
    }

    #[test]
    fn counter_cost_preserves_counting() {
        let net = constructions::bitonic(4).unwrap();
        let config = SimConfig {
            counter_cost: 50,
            ..SimConfig::queue_lock(3)
        };
        let stats = Simulator::new(&net, config).run(&wl(16, 400));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn central_counter_serializes() {
        // a serial line is the centralized-counter model: with a counter
        // cost, total time is at least ops * counter_cost
        let net = constructions::serial_line(1);
        let config = SimConfig {
            counter_cost: 100,
            ..SimConfig::queue_lock(1)
        };
        let stats = Simulator::new(&net, config).run(&wl(8, 100));
        assert!(stats.sim_time >= 100 * 100, "sim time {}", stats.sim_time);
        // …and it is linearizable: one counter, FIFO service
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn wide_network_beats_central_counter_under_contention() {
        let cost = 100;
        let central = constructions::serial_line(1);
        let central_stats = Simulator::new(
            &central,
            SimConfig {
                counter_cost: cost,
                ..SimConfig::queue_lock(1)
            },
        )
        .run(&wl(64, 1000));
        let net = constructions::bitonic(16).unwrap();
        let net_stats = Simulator::new(
            &net,
            SimConfig {
                counter_cost: cost,
                ..SimConfig::queue_lock(1)
            },
        )
        .run(&wl(64, 1000));
        assert!(
            net_stats.throughput() > central_stats.throughput(),
            "network {} vs central {}",
            net_stats.throughput(),
            central_stats.throughput()
        );
    }
}

#[cfg(test)]
mod mesh_tests {
    use super::*;
    use cnet_topology::constructions;

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            total_ops: ops,
            ..Workload::paper(processors, 0, 0)
        }
    }

    #[test]
    fn mesh_placement_counts_exactly() {
        let net = constructions::bitonic(8).unwrap();
        let config = SimConfig {
            placement: Placement::Mesh {
                side: 4,
                per_hop: 15,
            },
            ..SimConfig::queue_lock(5)
        };
        let stats = Simulator::new(&net, config).run(&wl(16, 400));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn mesh_distance_raises_latency() {
        let net = constructions::bitonic(16).unwrap();
        let flat = Simulator::new(&net, SimConfig::queue_lock(5)).run(&wl(8, 300));
        let meshed = Simulator::new(
            &net,
            SimConfig {
                placement: Placement::Mesh {
                    side: 8,
                    per_hop: 40,
                },
                ..SimConfig::queue_lock(5)
            },
        )
        .run(&wl(8, 300));
        assert!(
            meshed.mean_latency() > flat.mean_latency(),
            "mesh {} vs flat {}",
            meshed.mean_latency(),
            flat.mean_latency()
        );
    }

    #[test]
    fn mesh_skew_widens_c2_c1_and_can_violate() {
        // mesh distances make some paths structurally slower than
        // others, an organic (non-injected) source of c2/c1 spread
        let net = constructions::counting_tree(32).unwrap();
        let config = SimConfig {
            placement: Placement::Mesh {
                side: 3,
                per_hop: 600,
            },
            ..SimConfig::diffracting(7)
        };
        let stats = Simulator::new(&net, config).run(&wl(32, 3000));
        // counting still exact
        assert_eq!(stats.operations.len(), 3000);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..3000).collect::<Vec<u64>>());
        // the ratio is whatever it is; the run must simply be well-formed
        assert!(stats.sim_time > 0);
    }
}

#[cfg(test)]
mod degenerate_workload_tests {
    use super::*;
    use cnet_topology::constructions;

    #[test]
    fn zero_ops_completes_immediately() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 0,
            ..Workload::paper(4, 50, 100)
        });
        assert!(stats.operations.is_empty());
        assert_eq!(stats.nonlinearizable_count(), 0);
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn zero_processors_complete_nothing() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 100,
            ..Workload::paper(0, 0, 0)
        });
        assert!(stats.operations.is_empty());
    }

    #[test]
    fn more_processors_than_ops_is_fine() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 10,
            ..Workload::paper(64, 50, 10)
        });
        assert_eq!(stats.operations.len(), 10);
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use cnet_topology::constructions;

    fn open_wl(processors: usize, ops: usize, mean_gap: u64) -> Workload {
        Workload {
            total_ops: ops,
            arrival: ArrivalProcess::Open { mean_gap },
            ..Workload::paper(processors, 0, 0)
        }
    }

    #[test]
    fn open_loop_counts_exactly() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(9)).run(&open_wl(8, 300, 50));
        assert_eq!(stats.operations.len(), 300);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..300).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step(), "{}", stats.output_counts);
    }

    #[test]
    fn open_loop_is_reproducible() {
        let net = constructions::bitonic(8).unwrap();
        let w = open_wl(16, 400, 120);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        let b = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations, b.operations);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn open_loop_attributes_completions_to_clients() {
        let net = constructions::bitonic(4).unwrap();
        let w = open_wl(6, 120, 10);
        let stats = Simulator::new(&net, SimConfig::queue_lock(2)).run(&w);
        assert_eq!(stats.completed_by.len(), 120);
        assert!(stats.completed_by.iter().all(|&c| c < 6));
    }

    #[test]
    fn sparse_open_arrivals_behave_sequentially() {
        // gaps far larger than an op's span: every token completes
        // before the next arrives, so the history is linearizable
        let net = constructions::bitonic(4).unwrap();
        let cfg = SimConfig {
            link_jitter: 0,
            ..SimConfig::queue_lock(3)
        };
        let w = Workload {
            total_ops: 100,
            arrival: ArrivalProcess::Bursty {
                burst: 1,
                gap: 1_000_000,
            },
            ..Workload::paper(4, 0, 0)
        };
        let stats = Simulator::new(&net, cfg).run(&w);
        assert_eq!(stats.operations.len(), 100);
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn bursty_arrivals_land_back_to_back() {
        let net = constructions::bitonic(4).unwrap();
        let w = Workload {
            total_ops: 64,
            arrival: ArrivalProcess::Bursty {
                burst: 8,
                gap: 50_000,
            },
            ..Workload::paper(8, 0, 0)
        };
        let stats = Simulator::new(&net, SimConfig::queue_lock(4)).run(&w);
        assert_eq!(stats.operations.len(), 64);
        // tokens of one burst overlap in flight; bursts are disjoint:
        // sim time must span at least the 7 inter-burst gaps
        assert!(stats.sim_time >= 7 * 50_000, "sim time {}", stats.sim_time);
    }

    #[test]
    fn open_loop_zero_gap_is_a_thundering_herd() {
        let net = constructions::bitonic(8).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(6)).run(&open_wl(4, 200, 0));
        assert_eq!(stats.operations.len(), 200);
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn open_loop_zero_processors_completes_nothing() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            total_ops: 50,
            arrival: ArrivalProcess::Open { mean_gap: 10 },
            ..Workload::paper(0, 0, 0)
        });
        assert!(stats.operations.is_empty());
    }

    #[test]
    fn closed_loop_field_matches_legacy_behaviour() {
        // the arrival field's Closed default must not perturb the
        // existing closed-loop stream: same seed, same trace as a
        // workload built before the field existed would produce
        let net = constructions::bitonic(8).unwrap();
        let w = Workload::paper(16, 25, 1000);
        let w = Workload {
            total_ops: 300,
            ..w
        };
        assert_eq!(w.arrival, ArrivalProcess::Closed);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations.len(), 300);
    }
}
