//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cnet_timing::Operation;
use cnet_topology::{NodeId, OutputCounts, Topology, WireEnd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{Placement, SimConfig, WaitMode, Workload};
use crate::node::SimNode;
use crate::stats::RunStats;

/// The events a simulated processor can experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Begin the next counting operation (or retire if the quota is
    /// reached).
    StartOp { proc: usize },
    /// Arrive at a balancer node.
    ArriveNode { proc: usize, node: NodeId },
    /// Finish the balancer critical section: toggle, route, release.
    ToggleDone { proc: usize, node: NodeId },
    /// A prism slot occupancy timed out without a collision.
    PrismTimeout {
        proc: usize,
        node: NodeId,
        slot: usize,
        stamp: u64,
    },
    /// Arrive at an output counter (and queue if it is busy).
    ArriveCounter { proc: usize, counter: usize },
    /// The counter finishes serving this processor's fetch-and-inc.
    CounterDone { proc: usize, counter: usize },
}

#[derive(Debug, PartialEq, Eq)]
struct QEntry {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-processor simulation state.
#[derive(Debug, Clone)]
struct Proc {
    delayed: bool,
    input: usize,
    op_start: u64,
    /// Arrival time at the node currently being visited (for `Tog`).
    arrive_time: u64,
}

/// The deterministic discrete-event simulator.
///
/// See the [crate documentation](crate) for the machine model. A
/// `Simulator` is cheap to construct; all mutable state lives inside
/// [`Simulator::run`], so one simulator can run many workloads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    topology: &'a Topology,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given network and machine model.
    #[must_use]
    pub fn new(topology: &'a Topology, config: SimConfig) -> Self {
        Simulator { topology, config }
    }

    /// The simulated network.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The machine-model configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Runs the workload to completion and returns the measurements.
    ///
    /// Processors start staggered by one cycle each (ids `0..n` start
    /// at times `0..n`) and immediately begin a new operation whenever
    /// the previous one completes, until `workload.total_ops`
    /// operations have *started*; every started operation completes.
    #[must_use]
    pub fn run(&self, workload: &Workload) -> RunStats {
        Runner::new(self.topology, self.config, workload).run()
    }
}

struct Runner<'a> {
    topology: &'a Topology,
    config: SimConfig,
    workload: &'a Workload,
    queue: BinaryHeap<Reverse<QEntry>>,
    seq: u64,
    nodes: Vec<Option<SimNode>>,
    counters: Vec<u64>,
    counter_locks: Vec<crate::node::QueueLock>,
    procs: Vec<Proc>,
    rng: StdRng,
    stamp: u64,
    started_ops: usize,
    operations: Vec<Operation>,
    completed_by: Vec<usize>,
    toggle_count: u64,
    toggle_wait_total: u64,
    diffraction_pairs: u64,
    node_visits: u64,
    node_wait_total: u64,
    max_lock_queue: u64,
    sim_time: u64,
    /// Home cell of each balancer (mesh placement only).
    node_homes: Vec<(i64, i64)>,
    /// Home cell of each counter.
    counter_homes: Vec<(i64, i64)>,
}

fn mesh_cell(index: usize, side: usize) -> (i64, i64) {
    ((index % side) as i64, ((index / side) % side) as i64)
}

impl<'a> Runner<'a> {
    fn new(topology: &'a Topology, config: SimConfig, workload: &'a Workload) -> Self {
        let mut nodes = vec![None; topology.node_count()];
        for id in topology.iter_nodes() {
            let prism_slots = config.prism.and_then(|p| {
                // prisms only make sense on binary balancers
                (topology.fan_out(id) == 2).then(|| p.slots_at_layer(topology.layer_of(id)))
            });
            nodes[id.index()] = Some(SimNode::new(topology.fan_out(id), prism_slots));
        }
        let procs = (0..workload.processors)
            .map(|p| Proc {
                delayed: workload.is_delayed(p),
                input: p % topology.input_width(),
                op_start: 0,
                arrive_time: 0,
            })
            .collect();
        let (node_homes, counter_homes) = match config.placement {
            Placement::Uniform => (Vec::new(), Vec::new()),
            Placement::Mesh { side, .. } => {
                let side = side.max(1);
                (
                    (0..topology.node_count())
                        .map(|i| mesh_cell(i, side))
                        .collect(),
                    (0..topology.output_width())
                        .map(|i| mesh_cell(i + topology.node_count(), side))
                        .collect(),
                )
            }
        };
        Runner {
            topology,
            config,
            workload,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes,
            counters: vec![0; topology.output_width()],
            counter_locks: (0..topology.output_width())
                .map(|_| crate::node::QueueLock::default())
                .collect(),
            procs,
            rng: StdRng::seed_from_u64(config.seed),
            stamp: 0,
            started_ops: 0,
            operations: Vec::with_capacity(workload.total_ops),
            completed_by: Vec::with_capacity(workload.total_ops),
            toggle_count: 0,
            toggle_wait_total: 0,
            diffraction_pairs: 0,
            node_visits: 0,
            node_wait_total: 0,
            max_lock_queue: 0,
            sim_time: 0,
            node_homes,
            counter_homes,
        }
    }

    /// Extra wire cost from mesh distance between two homes.
    fn hop_cost(&self, from: (i64, i64), to: (i64, i64)) -> u64 {
        match self.config.placement {
            Placement::Uniform => 0,
            Placement::Mesh { per_hop, .. } => {
                let d = (from.0 - to.0).unsigned_abs() + (from.1 - to.1).unsigned_abs();
                per_hop * d
            }
        }
    }

    fn home_of_node(&self, node: NodeId) -> (i64, i64) {
        self.node_homes.get(node.index()).copied().unwrap_or((0, 0))
    }

    fn home_of_counter(&self, counter: usize) -> (i64, i64) {
        self.counter_homes.get(counter).copied().unwrap_or((0, 0))
    }

    fn push(&mut self, time: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QEntry { time, seq, ev }));
    }

    fn node_mut(&mut self, id: NodeId) -> &mut SimNode {
        self.nodes[id.index()]
            .as_mut()
            .expect("node exists in topology")
    }

    fn run(mut self) -> RunStats {
        for p in 0..self.workload.processors {
            self.push(p as u64, Ev::StartOp { proc: p });
        }
        while let Some(Reverse(QEntry { time, ev, .. })) = self.queue.pop() {
            self.sim_time = self.sim_time.max(time);
            self.handle(time, ev);
        }
        RunStats {
            operations: self.operations,
            completed_by: self.completed_by,
            output_counts: self.counters.iter().copied().collect::<OutputCounts>(),
            sim_time: self.sim_time,
            toggle_count: self.toggle_count,
            toggle_wait_total: self.toggle_wait_total,
            diffraction_pairs: self.diffraction_pairs,
            node_visits: self.node_visits,
            node_wait_total: self.node_wait_total,
            max_lock_queue: self.max_lock_queue,
        }
    }

    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::StartOp { proc } => self.start_op(now, proc),
            Ev::ArriveNode { proc, node } => self.arrive_node(now, proc, node),
            Ev::ToggleDone { proc, node } => self.toggle_done(now, proc, node),
            Ev::PrismTimeout {
                proc,
                node,
                slot,
                stamp,
            } => self.prism_timeout(now, proc, node, slot, stamp),
            Ev::ArriveCounter { proc, counter } => self.arrive_counter(now, proc, counter),
            Ev::CounterDone { proc, counter } => self.counter_done(now, proc, counter),
        }
    }

    fn start_op(&mut self, now: u64, proc: usize) {
        if self.started_ops >= self.workload.total_ops {
            return; // quota reached: this processor retires
        }
        self.started_ops += 1;
        self.procs[proc].op_start = now;
        let input = self.procs[proc].input;
        let entry = self.topology.input(input).node;
        self.push(now, Ev::ArriveNode { proc, node: entry });
    }

    fn arrive_node(&mut self, now: u64, proc: usize, node: NodeId) {
        self.procs[proc].arrive_time = now;
        // prism front-end first, if this node has one
        let has_prism = self.node_mut(node).prism.is_some();
        if has_prism {
            let slots = self
                .node_mut(node)
                .prism
                .as_ref()
                .expect("checked")
                .slot_count();
            let slot = self.rng.gen_range(0..slots);
            self.stamp += 1;
            let stamp = self.stamp;
            let collision = self
                .node_mut(node)
                .prism
                .as_mut()
                .expect("checked")
                .visit(slot, proc, stamp);
            match collision {
                Some(occupant) => {
                    // Diffraction: the waiting processor takes output
                    // 0, the arriving one output 1; the toggle is
                    // untouched. The pair leaves after `pair_cost`.
                    let pair_cost = self.config.prism.expect("prism configured").pair_cost;
                    self.diffraction_pairs += 1;
                    self.node_visits += 2;
                    self.node_wait_total += now - self.procs[occupant.proc].arrive_time;
                    self.node_wait_total += 0; // the arriver waits only pair_cost
                    let depart = now + pair_cost;
                    self.depart(depart, occupant.proc, node, 0);
                    self.depart(depart, proc, node, 1);
                }
                None => {
                    let window = self.config.prism.expect("prism configured").spin_window;
                    self.push(
                        now + window,
                        Ev::PrismTimeout {
                            proc,
                            node,
                            slot,
                            stamp,
                        },
                    );
                }
            }
            return;
        }
        self.request_lock(now, proc, node);
    }

    fn prism_timeout(&mut self, now: u64, proc: usize, node: NodeId, slot: usize, stamp: u64) {
        let still_waiting = self
            .node_mut(node)
            .prism
            .as_mut()
            .expect("timeout only scheduled for prism nodes")
            .timeout(slot, stamp);
        if still_waiting {
            // fall through to the toggle lock
            self.request_lock(now, proc, node);
        }
    }

    fn request_lock(&mut self, now: u64, proc: usize, node: NodeId) {
        let toggle_cost = self.config.toggle_cost;
        if self.node_mut(node).lock.acquire(proc) {
            self.push(now + toggle_cost, Ev::ToggleDone { proc, node });
        } else {
            let depth = self.node_mut(node).lock.queue_len() as u64;
            self.max_lock_queue = self.max_lock_queue.max(depth);
        }
        // otherwise the processor spins in the FIFO queue; ToggleDone
        // for it will be scheduled by the releasing holder
    }

    fn toggle_done(&mut self, now: u64, proc: usize, node: NodeId) {
        let wait = now - self.procs[proc].arrive_time;
        self.toggle_count += 1;
        self.toggle_wait_total += wait;
        self.node_visits += 1;
        self.node_wait_total += wait;
        let out = self.node_mut(node).toggle.route();
        if let Some(next_holder) = self.node_mut(node).lock.release() {
            let toggle_cost = self.config.toggle_cost;
            self.push(
                now + toggle_cost,
                Ev::ToggleDone {
                    proc: next_holder,
                    node,
                },
            );
        }
        self.depart(now, proc, node, out);
    }

    /// Sends a processor down output `out` of `node` at time `t`:
    /// schedules its arrival at the next node or counter after the wire
    /// latency plus any injected delay ("waits W cycles after
    /// traversing a node in the net").
    fn depart(&mut self, t: u64, proc: usize, node: NodeId, out: usize) {
        let wait = match self.workload.wait_mode {
            WaitMode::Fixed => {
                if self.procs[proc].delayed {
                    self.workload.wait_cycles
                } else {
                    0
                }
            }
            WaitMode::UniformRandom => {
                if self.workload.wait_cycles == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=self.workload.wait_cycles)
                }
            }
        };
        let jitter = if self.config.link_jitter == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.config.link_jitter)
        };
        let base = t + self.config.link_cost + jitter + wait;
        let from = self.home_of_node(node);
        match self.topology.output_wire(node, out) {
            WireEnd::Node { node: next, .. } => {
                let arrival = base + self.hop_cost(from, self.home_of_node(next));
                self.push(arrival, Ev::ArriveNode { proc, node: next });
            }
            WireEnd::Counter { index } => {
                let arrival = base + self.hop_cost(from, self.home_of_counter(index));
                self.push(
                    arrival,
                    Ev::ArriveCounter {
                        proc,
                        counter: index,
                    },
                );
            }
        }
    }

    fn arrive_counter(&mut self, now: u64, proc: usize, counter: usize) {
        if self.config.counter_cost == 0 {
            self.counter_done(now, proc, counter);
            return;
        }
        if self.counter_locks[counter].acquire(proc) {
            let cost = self.config.counter_cost;
            self.push(now + cost, Ev::CounterDone { proc, counter });
        }
        // otherwise queued; CounterDone is scheduled on release
    }

    fn counter_done(&mut self, now: u64, proc: usize, counter: usize) {
        if self.config.counter_cost > 0 {
            if let Some(next) = self.counter_locks[counter].release() {
                let cost = self.config.counter_cost;
                self.push(
                    now + cost,
                    Ev::CounterDone {
                        proc: next,
                        counter,
                    },
                );
            }
        }
        let w = self.topology.output_width() as u64;
        let value = counter as u64 + w * self.counters[counter];
        self.counters[counter] += 1;
        let token = self.operations.len();
        self.completed_by.push(proc);
        self.operations.push(Operation {
            token,
            input: self.procs[proc].input,
            start: self.procs[proc].op_start,
            end: now,
            counter,
            value,
        });
        // the next operation begins strictly after this one's response,
        // so a processor's successive operations are ordered under
        // Definition 2.4's strict precedence
        self.push(now + 1, Ev::StartOp { proc });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::constructions;

    fn small_workload(processors: usize, delayed: u32, wait: u64, ops: usize) -> Workload {
        Workload {
            processors,
            delayed_percent: delayed,
            wait_cycles: wait,
            total_ops: ops,
            wait_mode: WaitMode::Fixed,
        }
    }

    #[test]
    fn completes_exactly_total_ops() {
        let net = constructions::bitonic(4).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(1));
        let stats = sim.run(&small_workload(8, 0, 0, 200));
        assert_eq!(stats.operations.len(), 200);
        assert_eq!(stats.output_counts.total(), 200);
    }

    #[test]
    fn quiescent_counts_form_a_step() {
        for seed in 0..3 {
            let net = constructions::bitonic(8).unwrap();
            let sim = Simulator::new(&net, SimConfig::queue_lock(seed));
            let stats = sim.run(&small_workload(16, 50, 500, 300));
            assert!(stats.output_counts.is_step(), "{}", stats.output_counts);
        }
    }

    #[test]
    fn values_are_a_permutation_of_zero_to_n() {
        let net = constructions::bitonic(4).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(7));
        let stats = sim.run(&small_workload(8, 25, 100, 150));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..150).collect::<Vec<u64>>());
    }

    #[test]
    fn no_injected_delay_is_linearizable() {
        // The paper: "We also tested … W=0 and no non-linearizable
        // operations were detected."
        let net = constructions::bitonic(8).unwrap();
        let sim = Simulator::new(&net, SimConfig::queue_lock(3));
        let stats = sim.run(&small_workload(32, 50, 0, 500));
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let net = constructions::bitonic(8).unwrap();
        let w = small_workload(16, 25, 1000, 400);
        let a = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        let b = Simulator::new(&net, SimConfig::queue_lock(5)).run(&w);
        assert_eq!(a.operations, b.operations);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn diffracting_tree_counts_correctly() {
        let net = constructions::counting_tree(8).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(11));
        let stats = sim.run(&small_workload(16, 0, 0, 300));
        assert_eq!(stats.operations.len(), 300);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..300).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
        assert!(
            stats.diffraction_pairs > 0,
            "prisms should see collisions at n=16"
        );
    }

    #[test]
    fn diffracting_tree_without_delays_is_linearizable() {
        let net = constructions::counting_tree(16).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(13));
        let stats = sim.run(&small_workload(32, 0, 0, 500));
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn large_delays_cause_violations_on_trees() {
        // High W with many delayed processors pushes (Tog+W)/Tog far
        // above 2, where the paper observed violations.
        let net = constructions::counting_tree(16).unwrap();
        let sim = Simulator::new(&net, SimConfig::diffracting(17));
        let stats = sim.run(&small_workload(64, 50, 10_000, 2000));
        assert!(
            stats.average_ratio(10_000) > 2.0,
            "ratio {}",
            stats.average_ratio(10_000)
        );
        assert!(
            stats.nonlinearizable_count() > 0,
            "expected violations at ratio {:.1}",
            stats.average_ratio(10_000)
        );
    }

    #[test]
    fn toggle_wait_grows_with_contention() {
        let net = constructions::bitonic(4).unwrap();
        let lo = Simulator::new(&net, SimConfig::queue_lock(1)).run(&small_workload(2, 0, 0, 200));
        let hi = Simulator::new(&net, SimConfig::queue_lock(1)).run(&small_workload(64, 0, 0, 200));
        assert!(
            hi.avg_toggle_wait() > lo.avg_toggle_wait(),
            "hi {} vs lo {}",
            hi.avg_toggle_wait(),
            lo.avg_toggle_wait()
        );
    }

    #[test]
    fn uniform_random_waits_stay_linearizable() {
        // The paper: "Another scenario in which every token waits a
        // random number of cycles between 0 and W was also simulated
        // and was observed to be completely linearizable."
        let net = constructions::bitonic(8).unwrap();
        let w = Workload {
            processors: 32,
            delayed_percent: 0,
            wait_cycles: 1000,
            total_ops: 800,
            wait_mode: WaitMode::UniformRandom,
        };
        let stats = Simulator::new(&net, SimConfig::queue_lock(23)).run(&w);
        assert_eq!(stats.operations.len(), 800);
        // random symmetric jitter: violations should be absent or rare
        assert!(
            stats.nonlinearizable_ratio() < 0.01,
            "ratio {}",
            stats.nonlinearizable_ratio()
        );
    }

    #[test]
    fn single_processor_is_sequential() {
        let net = constructions::bitonic(4).unwrap();
        let stats =
            Simulator::new(&net, SimConfig::queue_lock(0)).run(&small_workload(1, 0, 0, 50));
        for (i, op) in stats.operations.iter().enumerate() {
            assert_eq!(op.value, i as u64, "sequential ops count in order");
        }
        assert_eq!(stats.nonlinearizable_count(), 0);
    }
}

#[cfg(test)]
mod counter_cost_tests {
    use super::*;
    use cnet_topology::constructions;

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            processors,
            delayed_percent: 0,
            wait_cycles: 0,
            total_ops: ops,
            wait_mode: WaitMode::Fixed,
        }
    }

    #[test]
    fn counter_cost_preserves_counting() {
        let net = constructions::bitonic(4).unwrap();
        let config = SimConfig {
            counter_cost: 50,
            ..SimConfig::queue_lock(3)
        };
        let stats = Simulator::new(&net, config).run(&wl(16, 400));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn central_counter_serializes() {
        // a serial line is the centralized-counter model: with a counter
        // cost, total time is at least ops * counter_cost
        let net = constructions::serial_line(1);
        let config = SimConfig {
            counter_cost: 100,
            ..SimConfig::queue_lock(1)
        };
        let stats = Simulator::new(&net, config).run(&wl(8, 100));
        assert!(stats.sim_time >= 100 * 100, "sim time {}", stats.sim_time);
        // …and it is linearizable: one counter, FIFO service
        assert_eq!(stats.nonlinearizable_count(), 0);
    }

    #[test]
    fn wide_network_beats_central_counter_under_contention() {
        let cost = 100;
        let central = constructions::serial_line(1);
        let central_stats = Simulator::new(
            &central,
            SimConfig {
                counter_cost: cost,
                ..SimConfig::queue_lock(1)
            },
        )
        .run(&wl(64, 1000));
        let net = constructions::bitonic(16).unwrap();
        let net_stats = Simulator::new(
            &net,
            SimConfig {
                counter_cost: cost,
                ..SimConfig::queue_lock(1)
            },
        )
        .run(&wl(64, 1000));
        assert!(
            net_stats.throughput() > central_stats.throughput(),
            "network {} vs central {}",
            net_stats.throughput(),
            central_stats.throughput()
        );
    }
}

#[cfg(test)]
mod mesh_tests {
    use super::*;
    use cnet_topology::constructions;

    fn wl(processors: usize, ops: usize) -> Workload {
        Workload {
            processors,
            delayed_percent: 0,
            wait_cycles: 0,
            total_ops: ops,
            wait_mode: WaitMode::Fixed,
        }
    }

    #[test]
    fn mesh_placement_counts_exactly() {
        let net = constructions::bitonic(8).unwrap();
        let config = SimConfig {
            placement: Placement::Mesh {
                side: 4,
                per_hop: 15,
            },
            ..SimConfig::queue_lock(5)
        };
        let stats = Simulator::new(&net, config).run(&wl(16, 400));
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<u64>>());
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn mesh_distance_raises_latency() {
        let net = constructions::bitonic(16).unwrap();
        let flat = Simulator::new(&net, SimConfig::queue_lock(5)).run(&wl(8, 300));
        let meshed = Simulator::new(
            &net,
            SimConfig {
                placement: Placement::Mesh {
                    side: 8,
                    per_hop: 40,
                },
                ..SimConfig::queue_lock(5)
            },
        )
        .run(&wl(8, 300));
        assert!(
            meshed.mean_latency() > flat.mean_latency(),
            "mesh {} vs flat {}",
            meshed.mean_latency(),
            flat.mean_latency()
        );
    }

    #[test]
    fn mesh_skew_widens_c2_c1_and_can_violate() {
        // mesh distances make some paths structurally slower than
        // others, an organic (non-injected) source of c2/c1 spread
        let net = constructions::counting_tree(32).unwrap();
        let config = SimConfig {
            placement: Placement::Mesh {
                side: 3,
                per_hop: 600,
            },
            ..SimConfig::diffracting(7)
        };
        let stats = Simulator::new(&net, config).run(&wl(32, 3000));
        // counting still exact
        assert_eq!(stats.operations.len(), 3000);
        let mut values: Vec<u64> = stats.operations.iter().map(|o| o.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..3000).collect::<Vec<u64>>());
        // the ratio is whatever it is; the run must simply be well-formed
        assert!(stats.sim_time > 0);
    }
}

#[cfg(test)]
mod degenerate_workload_tests {
    use super::*;
    use cnet_topology::constructions;

    #[test]
    fn zero_ops_completes_immediately() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            processors: 4,
            delayed_percent: 50,
            wait_cycles: 100,
            total_ops: 0,
            wait_mode: WaitMode::Fixed,
        });
        assert!(stats.operations.is_empty());
        assert_eq!(stats.nonlinearizable_count(), 0);
        assert!(stats.output_counts.is_step());
    }

    #[test]
    fn zero_processors_complete_nothing() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            processors: 0,
            delayed_percent: 0,
            wait_cycles: 0,
            total_ops: 100,
            wait_mode: WaitMode::Fixed,
        });
        assert!(stats.operations.is_empty());
    }

    #[test]
    fn more_processors_than_ops_is_fine() {
        let net = constructions::bitonic(4).unwrap();
        let stats = Simulator::new(&net, SimConfig::queue_lock(1)).run(&Workload {
            processors: 64,
            delayed_percent: 50,
            wait_cycles: 10,
            total_ops: 10,
            wait_mode: WaitMode::Fixed,
        });
        assert_eq!(stats.operations.len(), 10);
    }
}
