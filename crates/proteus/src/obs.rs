//! Simulator-side metric recording, compiled to nothing without the
//! `obs` feature.
//!
//! The event loop calls these hooks unconditionally; with `obs` off
//! [`SimObs`] is a zero-sized struct whose methods are empty
//! `#[inline]` bodies, so the fast path described in
//! [`crate::sim`] is unchanged. With `obs` on, the recorder gathers
//! per-node contention, event-queue depth (subsampled), per-wire
//! latencies and a per-operation completion buffer, and
//! [`SimObs::finish`] freezes it all — including the replayed
//! violation telemetry — into the [`cnet_obs::MetricsSnapshot`]
//! carried by [`crate::RunStats::metrics`].
//!
//! Recording never draws from the simulation RNG and never schedules
//! events, so enabling `obs` cannot change what is simulated: every
//! existing statistic stays bit-identical (the golden-trace tests
//! still pass under `--features obs`).

#[cfg(not(feature = "obs"))]
pub(crate) use disabled::SimObs;
#[cfg(feature = "obs")]
pub(crate) use enabled::SimObs;

#[cfg(feature = "obs")]
mod enabled {
    use cnet_obs::hist::bucket_of;
    use cnet_obs::snapshot::{
        BalancerMetrics, FabricTelemetry, LinkMetrics, MetricsSnapshot, NetworkMetrics,
    };
    use cnet_obs::{LogHistogram, ViolationTracker, BUCKETS, METRICS_SCHEMA_VERSION};
    use cnet_timing::sweep;

    /// Per-node accumulator mirroring the run-wide counters. Kept to
    /// one cache line (56 bytes of fields) so a toggle touches this
    /// line plus one bucket-count line; the log-bucket counts live in
    /// the flat `wait_buckets` side array and both are widened into a
    /// [`LogHistogram`] per node only at freeze time. Embedding a
    /// 544-byte histogram here instead measurably slowed small cells:
    /// the recorder's working set (and its first-touch page faults)
    /// dominated the probe cost.
    #[derive(Debug, Clone)]
    struct NodeAcc {
        visits: u64,
        toggles: u64,
        toggle_wait_total: u64,
        diffracted: u64,
        wait_sum: u64,
        /// `u64::MAX` sentinel while empty (the
        /// [`LogHistogram::from_parts`] convention).
        wait_min: u64,
        wait_max: u64,
    }

    impl Default for NodeAcc {
        fn default() -> Self {
            NodeAcc {
                visits: 0,
                toggles: 0,
                toggle_wait_total: 0,
                diffracted: 0,
                wait_sum: 0,
                wait_min: u64::MAX,
                wait_max: 0,
            }
        }
    }

    /// Per-fabric-queue accumulator; the rows of the snapshot's
    /// optional `fabric` block. Grown lazily — only non-degenerate
    /// fabrics ever touch it, so degenerate runs allocate nothing.
    #[derive(Debug, Clone, Copy, Default)]
    struct QueueAcc {
        serviced: u64,
        max_depth: u64,
        drops: u64,
        nacks: u64,
    }

    /// How often the queue depth is sampled: every 64th push. Depth
    /// changes by one per event, so subsampling keeps the histogram
    /// shape while taking the recorder off the innermost loop — the
    /// event push is the only hook that fires more than once per hop.
    const DEPTH_SAMPLE_MASK: u64 = 63;

    /// Recycled recorder buffers, one set per worker thread. A worker
    /// runs many cells; reusing the allocations keeps first-touch page
    /// faults out of the timed region — clearing warm memory costs a
    /// memset, faulting fresh pages costs kernel round trips, and for
    /// small cells the difference is a measurable slice of the obs-on
    /// overhead.
    #[derive(Debug, Default)]
    struct Scratch {
        nodes: Vec<NodeAcc>,
        wait_buckets: Vec<u32>,
        completions: Vec<(u64, u64, u64)>,
    }

    thread_local! {
        static SCRATCH: std::cell::Cell<Option<Scratch>> =
            const { std::cell::Cell::new(None) };
    }

    /// The live simulator recorder.
    #[derive(Debug)]
    pub(crate) struct SimObs {
        nodes: Vec<NodeAcc>,
        /// Flat `nodes × BUCKETS` wait-histogram counts. `u32` halves
        /// the recorder's working set; saturating increments mean a
        /// (physically implausible) 4-billion-sample bucket pins at
        /// `u32::MAX` instead of wrapping.
        wait_buckets: Vec<u32>,
        pushes: u64,
        queue_depth_hist: LogHistogram,
        wire_hist: LogHistogram,
        /// `(start, end, value)` per completed operation, in completion
        /// order. Violation telemetry replays this at freeze time: the
        /// stream is end-ordered, so every replayed insert is an append
        /// and the per-op cost in the hot loop is one `Vec` push.
        completions: Vec<(u64, u64, u64)>,
        /// Per-fabric-queue rows, indexed by fabric queue id; empty
        /// for degenerate-fabric runs.
        fabric: Vec<QueueAcc>,
    }

    impl SimObs {
        pub(crate) fn new(node_count: usize, ops_hint: usize) -> Self {
            let mut s = SCRATCH.with(std::cell::Cell::take).unwrap_or_default();
            s.nodes.clear();
            s.nodes.resize(node_count, NodeAcc::default());
            s.wait_buckets.clear();
            s.wait_buckets.resize(node_count * BUCKETS, 0);
            s.completions.clear();
            s.completions.reserve(ops_hint);
            SimObs {
                nodes: s.nodes,
                wait_buckets: s.wait_buckets,
                pushes: 0,
                queue_depth_hist: LogHistogram::new(),
                wire_hist: LogHistogram::new(),
                completions: s.completions,
                fabric: Vec::new(),
            }
        }

        fn fabric_acc(&mut self, queue: usize) -> &mut QueueAcc {
            if queue >= self.fabric.len() {
                self.fabric.resize(queue + 1, QueueAcc::default());
            }
            &mut self.fabric[queue]
        }

        /// A token joined fabric queue `queue`; `depth` is the
        /// occupancy including it.
        #[inline]
        pub(crate) fn fabric_depth(&mut self, queue: usize, depth: u64) {
            let acc = self.fabric_acc(queue);
            acc.max_depth = acc.max_depth.max(depth);
        }

        /// Fabric queue `queue` finished serving one token.
        #[inline]
        pub(crate) fn fabric_served(&mut self, queue: usize) {
            self.fabric_acc(queue).serviced += 1;
        }

        /// A full `queue` silently dropped an arrival.
        #[inline]
        pub(crate) fn fabric_drop(&mut self, queue: usize) {
            self.fabric_acc(queue).drops += 1;
        }

        /// A full `queue` NACKed an arrival back to its sender.
        #[inline]
        pub(crate) fn fabric_nack(&mut self, queue: usize) {
            self.fabric_acc(queue).nacks += 1;
        }

        /// An event was pushed. Returns whether the caller should
        /// sample the queue depth (the first push and every 64th after
        /// it, so even tiny runs record at least one sample). The
        /// caller reads the depth straight off the event queue — both
        /// queue kinds track their length in O(1) — so the recorder
        /// keeps no depth counter of its own and event pops need no
        /// hook at all.
        #[inline]
        pub(crate) fn on_push(&mut self) -> bool {
            self.pushes += 1;
            self.pushes & DEPTH_SAMPLE_MASK == 1
        }

        /// Records one sampled queue depth (only called when
        /// [`Self::on_push`] returned `true`).
        #[inline]
        pub(crate) fn record_depth(&mut self, depth: u64) {
            self.queue_depth_hist.record(depth);
        }

        /// A token toggled `node` after waiting `wait` cycles.
        #[inline]
        pub(crate) fn toggle(&mut self, node: usize, wait: u64) {
            let acc = &mut self.nodes[node];
            acc.visits += 1;
            acc.toggles += 1;
            acc.toggle_wait_total += wait;
            acc.wait_sum += wait;
            acc.wait_min = acc.wait_min.min(wait);
            acc.wait_max = acc.wait_max.max(wait);
            let b = &mut self.wait_buckets[node * BUCKETS + bucket_of(wait)];
            *b = b.saturating_add(1);
        }

        /// A prism pair diffracted at `node`: the occupant waited
        /// `occupant_wait`, the arriver left immediately — mirroring
        /// how the run-wide counters attribute the pair. Two wait
        /// samples land in the node's histogram parts (`occupant_wait`
        /// and 0), folded into one update here.
        #[inline]
        pub(crate) fn diffraction(&mut self, node: usize, occupant_wait: u64) {
            let acc = &mut self.nodes[node];
            acc.visits += 2;
            acc.diffracted += 2;
            acc.wait_sum += occupant_wait;
            acc.wait_min = 0;
            acc.wait_max = acc.wait_max.max(occupant_wait);
            let base = node * BUCKETS;
            let b = &mut self.wait_buckets[base + bucket_of(occupant_wait)];
            *b = b.saturating_add(1);
            let z = &mut self.wait_buckets[base];
            *z = z.saturating_add(1);
        }

        /// One wire hop cost `latency` cycles door-to-door.
        #[inline]
        pub(crate) fn wire(&mut self, latency: u64) {
            self.wire_hist.record(latency);
        }

        /// One operation completed. Everything derived per-op — the
        /// latency histogram and the violation telemetry — is replayed
        /// from the completion buffer at freeze time; the hot loop only
        /// pays for the push.
        #[inline]
        pub(crate) fn op(&mut self, start: u64, end: u64, value: u64) {
            self.completions.push((start, end, value));
        }

        /// Freezes the recorder. `toggle_cost` reconstructs lock hold
        /// times (every simulated critical section holds for exactly
        /// the configured cost).
        pub(crate) fn finish(self, wait_cycles: u64, toggle_cost: u64) -> Option<MetricsSnapshot> {
            let SimObs {
                nodes,
                wait_buckets,
                queue_depth_hist,
                wire_hist,
                completions,
                fabric,
                ..
            } = self;
            let fabric = if fabric.is_empty() {
                None
            } else {
                Some(FabricTelemetry {
                    links: fabric
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.serviced + a.max_depth + a.drops + a.nacks > 0)
                        .map(|(queue, a)| LinkMetrics {
                            queue,
                            serviced: a.serviced,
                            max_depth: a.max_depth,
                            drops: a.drops,
                            nacks: a.nacks,
                        })
                        .collect(),
                })
            };
            let mut violations = ViolationTracker::new();
            let mut op_hist = LogHistogram::new();
            for &(start, end, value) in &completions {
                op_hist.record(end - start);
                violations.observe(start, end, value);
            }
            let operations = completions.len() as u64;
            let balancers: Vec<BalancerMetrics> = nodes
                .iter()
                .enumerate()
                .map(|(node, acc)| {
                    let mut buckets = [0u64; BUCKETS];
                    for (dst, &src) in buckets
                        .iter_mut()
                        .zip(&wait_buckets[node * BUCKETS..(node + 1) * BUCKETS])
                    {
                        *dst = u64::from(src);
                    }
                    BalancerMetrics {
                        node,
                        visits: acc.visits,
                        toggles: acc.toggles,
                        toggle_wait_total: acc.toggle_wait_total,
                        diffracted: acc.diffracted,
                        // in the simulator, queueing at the balancer *is*
                        // the lock wait, and every hold lasts toggle_cost
                        lock_wait_total: acc.toggle_wait_total,
                        lock_hold_total: acc.toggles * toggle_cost,
                        // every visit recorded exactly one wait sample
                        wait_hist: LogHistogram::from_parts(
                            buckets,
                            acc.visits,
                            acc.wait_sum,
                            acc.wait_min,
                            acc.wait_max,
                        ),
                    }
                })
                .collect();
            SCRATCH.with(|slot| {
                slot.set(Some(Scratch {
                    nodes,
                    wait_buckets,
                    completions,
                }));
            });
            let toggle_wait_total: u64 = balancers.iter().map(|b| b.toggle_wait_total).sum();
            let toggles: u64 = balancers.iter().map(|b| b.toggles).sum();
            let node_wait_total: u64 = balancers.iter().map(|b| b.wait_hist.sum()).sum();
            let visits: u64 = balancers.iter().map(|b| b.visits).sum();
            Some(MetricsSnapshot {
                schema_version: METRICS_SCHEMA_VERSION,
                wait_cycles,
                network: NetworkMetrics {
                    operations,
                    c1_estimate: wire_hist.min() as f64,
                    c2_estimate: wire_hist.max() as f64,
                    avg_toggle_wait: sweep::avg_toggle_wait(
                        toggle_wait_total,
                        toggles,
                        node_wait_total,
                        visits,
                    ),
                    average_ratio: sweep::average_ratio(
                        toggle_wait_total,
                        toggles,
                        node_wait_total,
                        visits,
                        wait_cycles,
                    ),
                    wire_latency_hist: wire_hist,
                    op_latency_hist: op_hist,
                    queue_depth_hist,
                    nonlinearizable: violations.count(),
                    violation_magnitude_total: violations.magnitude().sum(),
                    violation_magnitude_max: violations.magnitude().max(),
                    violation_magnitude_hist: violations.magnitude().clone(),
                },
                balancers,
                fabric,
            })
        }
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    use cnet_obs::MetricsSnapshot;

    /// The disabled recorder: zero-sized, every hook an empty inline
    /// body.
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct SimObs;

    impl SimObs {
        #[inline(always)]
        pub(crate) fn new(_nodes: usize, _ops_hint: usize) -> Self {
            SimObs
        }

        #[inline(always)]
        pub(crate) fn on_push(&mut self) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn record_depth(&mut self, _depth: u64) {}

        #[inline(always)]
        pub(crate) fn toggle(&mut self, _node: usize, _wait: u64) {}

        #[inline(always)]
        pub(crate) fn diffraction(&mut self, _node: usize, _occupant_wait: u64) {}

        #[inline(always)]
        pub(crate) fn wire(&mut self, _latency: u64) {}

        #[inline(always)]
        pub(crate) fn fabric_depth(&mut self, _queue: usize, _depth: u64) {}

        #[inline(always)]
        pub(crate) fn fabric_served(&mut self, _queue: usize) {}

        #[inline(always)]
        pub(crate) fn fabric_drop(&mut self, _queue: usize) {}

        #[inline(always)]
        pub(crate) fn fabric_nack(&mut self, _queue: usize) {}

        #[inline(always)]
        pub(crate) fn op(&mut self, _start: u64, _end: u64, _value: u64) {}

        #[inline(always)]
        pub(crate) fn finish(
            self,
            _wait_cycles: u64,
            _toggle_cost: u64,
        ) -> Option<MetricsSnapshot> {
            None
        }
    }
}

#[cfg(all(test, not(feature = "obs")))]
mod tests {
    use super::SimObs;

    #[test]
    fn disabled_recorder_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<SimObs>(), 0);
        let mut o = SimObs::new(64, 100);
        o.on_push();
        o.toggle(0, 5);
        o.op(0, 1, 2);
        assert!(o.finish(100, 2).is_none());
    }
}
