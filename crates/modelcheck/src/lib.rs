//! Deterministic schedule exploration for the concurrent crate.
//!
//! `cnet-concurrent` reproduces the paper's Section 5 counters over
//! real atomics, but free-running stress tests sample a vanishingly
//! thin, nondeterministic slice of the interleaving space. This crate
//! is the correctness-tooling counterpart of the perf-regression
//! layer: it drives the same code under a cooperative virtual-thread
//! scheduler (the vendored `loom` shim) in which *every* shared-memory
//! operation is a recorded scheduling decision, so
//!
//! * small configurations (2–3 threads, width-2/4 networks) can be
//!   checked under **bounded exhaustive DFS** — every interleaving,
//!   enumerated and counted ([`explore::explore_dfs`]);
//! * larger ones can be fuzzed with **seeded probabilistic concurrency
//!   testing** — PCT-style random priorities with a handful of
//!   priority-change points ([`explore::explore_pct`]); and
//! * every failure reports a replayable `(seed, schedule)` pair:
//!   [`explore::replay`] re-runs the exact interleaving that failed
//!   ([`explore::Failure`] carries everything needed).
//!
//! The [`sync`] module is the facade `cnet-concurrent` routes its
//! atomics and spin loops through when built with
//! `RUSTFLAGS="--cfg modelcheck"`; in ordinary builds the facade
//! resolves to `std::sync::atomic` re-exports instead, so release
//! binaries are byte-for-byte unaffected.
//!
//! [`trace::Recorder`] timestamps operations inside a model execution
//! with a virtual logical clock and emits `cnet_timing::Operation`
//! records, so explored executions feed directly into the
//! linearizability checkers — including the brute-force
//! `linearizability::check_exhaustive` oracle.
//!
//! # Example
//!
//! ```
//! use cnet_modelcheck::explore::{explore_dfs, Config};
//! use cnet_modelcheck::sync::{spawn, AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // a correct counter: fetch_add is atomic in every interleaving
//! let report = explore_dfs(&Config::default(), || {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let h = spawn(move || c2.fetch_add(1, Ordering::AcqRel));
//!     c.fetch_add(1, Ordering::AcqRel);
//!     h.join();
//!     assert_eq!(c.load(Ordering::Acquire), 2);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.exhausted && report.schedules_explored >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod sync;
pub mod trace;

pub(crate) mod rng;

pub use explore::{explore_dfs, explore_pct, replay, Config, Failure, PctConfig, Report};
