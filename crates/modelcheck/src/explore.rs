//! Exploration strategies: bounded exhaustive DFS, seeded PCT, and
//! exact replay.
//!
//! Every strategy drives the same runtime ([`loom::rt`]); failures are
//! strategy-independent once recorded, because the runtime logs the
//! chosen-thread index at every decision and [`replay`] feeds that
//! sequence straight back. A PCT failure therefore reports *both* its
//! seed (to re-derive the priorities) and the concrete schedule (to
//! replay without PCT at all).

use std::collections::HashMap;

use loom::dfs::{Dfs, ReplayStrategy};
use loom::rt::{self, Strategy};

use crate::rng::{mix, SplitMix64};

/// Budgets for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Scheduling decisions allowed per execution before the run is
    /// reported as a livelock.
    pub max_steps: usize,
    /// Executions allowed before DFS gives up (`exhausted` stays
    /// `false` if this trips first).
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: rt::DEFAULT_MAX_STEPS,
            max_schedules: 100_000,
        }
    }
}

/// Parameters of a PCT (probabilistic concurrency testing) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PctConfig {
    /// Base seed; iteration `i` runs with `mix(seed ^ i)`.
    pub seed: u64,
    /// Random schedules to try.
    pub schedules: usize,
    /// Bug depth `d`: the number of priority-change points injected
    /// per schedule (PCT finds every depth-`d` bug with probability
    /// ≥ 1/(n·k^(d-1)) per run).
    pub depth: usize,
    /// Estimated execution length `k`: priority-change points are
    /// sampled uniformly from `[1, horizon]`, so this should be close
    /// to the number of scheduling decisions one execution makes —
    /// over-estimating dilutes the probability of a change point
    /// landing inside the run at all.
    pub horizon: usize,
}

impl Default for PctConfig {
    fn default() -> Self {
        PctConfig {
            seed: 0xC0FF_EE00,
            schedules: 200,
            depth: 3,
            horizon: 64,
        }
    }
}

/// A failing interleaving, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic / deadlock / budget message.
    pub message: String,
    /// Chosen-thread indices at every decision — feed to [`replay`].
    pub schedule: Vec<usize>,
    /// The per-iteration PCT seed, when found by [`explore_pct`].
    pub seed: Option<u64>,
    /// Which execution (0-based) failed.
    pub schedule_index: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule #{} failed: {}",
            self.schedule_index, self.message
        )?;
        if let Some(seed) = self.seed {
            write!(f, " (pct seed {seed:#x})")?;
        }
        write!(f, "; replay with schedule {:?}", self.schedule)
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions actually driven.
    pub schedules_explored: usize,
    /// DFS: the whole bounded space was enumerated. PCT: every
    /// requested schedule ran.
    pub exhausted: bool,
    /// The first failing interleaving, if any (exploration stops at
    /// the first failure).
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the full replay recipe if the exploration failed;
    /// returns the report otherwise. Convenience for tests.
    ///
    /// # Panics
    ///
    /// Panics if `failure` is set.
    pub fn expect_ok(self) -> Report {
        if let Some(f) = &self.failure {
            panic!("model checking failed: {f}");
        }
        self
    }
}

/// Bounded exhaustive DFS over every interleaving of `f`.
///
/// Stops at the first failure. `exhausted` is `true` when the whole
/// space fit inside `config.max_schedules`.
pub fn explore_dfs<F: Fn()>(config: &Config, f: F) -> Report {
    let mut dfs = Dfs::new();
    let mut explored = 0usize;
    loop {
        let outcome = rt::run_with(Box::new(dfs.strategy()), config.max_steps, &f);
        explored += 1;
        if let Some(message) = outcome.failure.clone() {
            return Report {
                schedules_explored: explored,
                exhausted: false,
                failure: Some(Failure {
                    message,
                    schedule: outcome.choices(),
                    seed: None,
                    schedule_index: explored - 1,
                }),
            };
        }
        if !dfs.advance(&outcome) {
            return Report {
                schedules_explored: explored,
                exhausted: true,
                failure: None,
            };
        }
        if explored >= config.max_schedules {
            return Report {
                schedules_explored: explored,
                exhausted: false,
                failure: None,
            };
        }
    }
}

/// Seeded PCT: `pct.schedules` runs with random thread priorities and
/// `pct.depth - 1` priority-change points each. Deterministic for a
/// fixed seed. Stops at the first failure.
pub fn explore_pct<F: Fn()>(config: &Config, pct: &PctConfig, f: F) -> Report {
    for i in 0..pct.schedules {
        let iter_seed = mix(pct.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let strategy = PctStrategy::new(iter_seed, pct.depth, pct.horizon);
        let outcome = rt::run_with(Box::new(strategy), config.max_steps, &f);
        if let Some(message) = outcome.failure.clone() {
            return Report {
                schedules_explored: i + 1,
                exhausted: false,
                failure: Some(Failure {
                    message,
                    schedule: outcome.choices(),
                    seed: Some(iter_seed),
                    schedule_index: i,
                }),
            };
        }
    }
    Report {
        schedules_explored: pct.schedules,
        exhausted: true,
        failure: None,
    }
}

/// Re-runs `f` under an exact recorded schedule (see
/// [`Failure::schedule`]). Returns the failure message if the run
/// fails again — for a deterministic body it always does.
pub fn replay<F: FnOnce()>(schedule: &[usize], f: F) -> Option<String> {
    let outcome = rt::run_with(
        Box::new(ReplayStrategy::new(schedule.to_vec())),
        rt::DEFAULT_MAX_STEPS,
        f,
    );
    outcome.failure
}

/// PCT scheduling: random static priorities, `depth - 1` random
/// priority-change points, highest-priority runnable thread wins.
#[derive(Debug)]
struct PctStrategy {
    rng: SplitMix64,
    /// Static priority per virtual thread; assigned on first sight,
    /// all above `next_low`.
    priorities: HashMap<usize, u64>,
    /// Steps at which the running thread's priority drops below every
    /// static priority.
    change_points: Vec<usize>,
    /// Next "lowered" priority value (counts down, so later drops rank
    /// below earlier ones, as in the PCT paper).
    next_low: u64,
}

impl PctStrategy {
    fn new(seed: u64, depth: usize, horizon: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let horizon = horizon.max(2) as u64;
        let change_points = (0..depth.saturating_sub(1))
            .map(|_| rng.below(horizon) as usize + 1)
            .collect();
        PctStrategy {
            rng,
            priorities: HashMap::new(),
            change_points,
            next_low: 1 << 20,
        }
    }
}

impl Strategy for PctStrategy {
    fn next_thread(&mut self, step: usize, runnable: &[usize], current: usize) -> usize {
        for &t in runnable {
            if !self.priorities.contains_key(&t) {
                // static priorities live above every possible lowered
                // value
                let p = (1 << 21) + self.rng.below(1 << 20);
                self.priorities.insert(t, p);
            }
        }
        if self.change_points.contains(&step) {
            self.next_low -= 1;
            let low = self.next_low;
            self.priorities.insert(current, low);
        }
        runnable
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| self.priorities.get(t).copied().unwrap_or(0))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{spawn, AtomicU64, Ordering};
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc;

    /// load;store increment — racy on purpose.
    fn racy_body(assert_clean: bool) -> impl Fn() {
        move || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let h = spawn(move || {
                let v = c2.load(Ordering::Acquire);
                c2.store(v + 1, Ordering::Release);
            });
            let v = c.load(Ordering::Acquire);
            c.store(v + 1, Ordering::Release);
            h.join();
            if assert_clean {
                assert_eq!(c.load(Ordering::Acquire), 2, "lost update");
            }
        }
    }

    #[test]
    fn dfs_exhausts_small_models_and_counts_schedules() {
        let report = explore_dfs(&Config::default(), racy_body(false));
        assert!(report.exhausted);
        assert!(report.failure.is_none());
        assert!(
            report.schedules_explored >= 3,
            "two racing threads must yield several interleavings, got {}",
            report.schedules_explored
        );
    }

    #[test]
    fn dfs_finds_the_lost_update_and_replay_reproduces_it() {
        let report = explore_dfs(&Config::default(), racy_body(true));
        let failure = report.failure.expect("lost update must be found");
        assert!(failure.message.contains("lost update"));
        let msg =
            replay(&failure.schedule, racy_body(true)).expect("replay must reproduce the failure");
        assert!(msg.contains("lost update"));
    }

    #[test]
    fn pct_finds_the_lost_update_with_a_fixed_seed() {
        let pct = PctConfig {
            seed: 7,
            schedules: 64,
            depth: 3,
            horizon: 16,
        };
        let report = explore_pct(&Config::default(), &pct, racy_body(true));
        let failure = report.failure.expect("PCT must find the depth-1 bug");
        assert!(failure.seed.is_some());
        // the schedule replays without re-deriving priorities
        assert!(replay(&failure.schedule, racy_body(true)).is_some());
    }

    #[test]
    fn pct_is_deterministic_for_a_fixed_seed() {
        let pct = PctConfig {
            seed: 99,
            schedules: 32,
            depth: 2,
            horizon: 16,
        };
        let a = explore_pct(&Config::default(), &pct, racy_body(true));
        let b = explore_pct(&Config::default(), &pct, racy_body(true));
        match (a.failure, b.failure) {
            (Some(fa), Some(fb)) => {
                assert_eq!(fa.schedule, fb.schedule);
                assert_eq!(fa.seed, fb.seed);
                assert_eq!(fa.schedule_index, fb.schedule_index);
            }
            (None, None) => {}
            other => panic!("nondeterministic PCT outcome: {other:?}"),
        }
    }

    #[test]
    fn schedule_budget_reports_not_exhausted() {
        let config = Config {
            max_schedules: 2,
            ..Config::default()
        };
        let report = explore_dfs(&config, racy_body(false));
        assert_eq!(report.schedules_explored, 2);
        assert!(!report.exhausted);
        assert!(report.failure.is_none());
    }

    #[test]
    fn expect_ok_passes_through_clean_reports() {
        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        let report = explore_dfs(&Config::default(), move || {
            s.fetch_add(1, StdOrdering::Relaxed);
        })
        .expect_ok();
        assert_eq!(report.schedules_explored, 1);
        assert_eq!(seen.load(StdOrdering::Relaxed), 1);
    }
}
