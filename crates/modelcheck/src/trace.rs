//! Logical-clock operation tracing inside model executions.
//!
//! Reproduces the measurement methodology of `cnet_concurrent::audit`
//! under the scheduler: every operation is bracketed by two ticks of a
//! shared virtual clock (a facade `fetch_add`, i.e. itself a yield
//! point), so "completely precedes" has a sound witness in every
//! explored interleaving. The resulting `cnet_timing::Operation`
//! records feed both the `O(n log n)` sweep
//! (`linearizability::count_nonlinearizable`) and the brute-force
//! oracle (`linearizability::check_exhaustive`).

use std::sync::{Mutex, PoisonError};

use cnet_timing::Operation;
use loom::sync::atomic::{AtomicU64, Ordering};

/// Records `(start, end, value)` triples against a virtual logical
/// clock. Construct one per model execution (inside the explored
/// closure) and share it across virtual threads with an `Arc`.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    ops: Mutex<Vec<(u64, u64, u64)>>,
}

impl Recorder {
    /// Creates an empty recorder with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `op`, bracketing it with clock ticks, and records the
    /// value it returns.
    pub fn measure(&self, op: impl FnOnce() -> u64) -> u64 {
        let start = self.clock.fetch_add(1, Ordering::AcqRel);
        let value = op();
        let end = self.clock.fetch_add(1, Ordering::AcqRel);
        // uncontended within one scheduler step: no yield point between
        // lock and unlock, so the virtual scheduler cannot interleave
        // another recorder call here
        self.ops
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((start, end, value));
        value
    }

    /// The operations recorded so far, token-numbered in recording
    /// order, with `counter = value mod width` (pass `width = 1` for
    /// centralized counters).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn operations(&self, width: usize) -> Vec<Operation> {
        assert!(width > 0, "width must be positive");
        self.ops
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .enumerate()
            .map(|(token, &(start, end, value))| Operation {
                token,
                input: 0,
                start,
                end,
                counter: (value % width as u64) as usize,
                value,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_dfs, Config};
    use crate::sync::spawn;
    use cnet_timing::linearizability;
    use std::sync::Arc;

    #[test]
    fn recorder_brackets_operations_with_clock_ticks() {
        explore_dfs(&Config::default(), || {
            let rec = Arc::new(Recorder::new());
            let counter = Arc::new(AtomicU64::new(0));
            let (r2, c2) = (Arc::clone(&rec), Arc::clone(&counter));
            let h = spawn(move || {
                r2.measure(|| c2.fetch_add(1, Ordering::AcqRel));
            });
            rec.measure(|| counter.fetch_add(1, Ordering::AcqRel));
            h.join();
            let ops = rec.operations(1);
            assert_eq!(ops.len(), 2);
            for op in &ops {
                assert!(op.start < op.end, "bracketing must be ordered");
            }
            // an atomic fetch_add counter is linearizable in every
            // interleaving
            assert_eq!(linearizability::count_nonlinearizable(&ops), 0);
            assert!(linearizability::check_exhaustive(&ops).is_some());
        })
        .expect_ok();
    }
}
