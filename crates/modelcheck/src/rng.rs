//! SplitMix64: the tiny seeded generator behind PCT priorities and
//! per-thread deterministic seeds (same constants as
//! `cnet_proteus::rng::SimRng`).

#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One-shot mix of a seed, for deriving per-iteration sub-seeds.
pub(crate) fn mix(seed: u64) -> u64 {
    SplitMix64::new(seed).next()
}
