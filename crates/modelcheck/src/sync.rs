//! The virtual side of the concurrency facade.
//!
//! `cnet-concurrent` declares its own `sync` module that re-exports
//! either `std::sync::atomic` (ordinary builds) or *this* module
//! (`RUSTFLAGS="--cfg modelcheck"`). Everything here routes through
//! the vendored loom scheduler when a model execution is running and
//! degrades to the `std` behaviour when none is — so a
//! `--cfg modelcheck` build still passes its ordinary unit tests.

pub use loom::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
pub use loom::thread::{spawn, yield_now, JoinHandle};

/// Spin-loop hint. Inside a model execution this deprioritizes the
/// calling virtual thread until another thread makes a step — which is
/// what keeps exhaustive DFS finite around spin-wait loops; outside,
/// it is `std::hint::spin_loop`.
pub fn spin_loop() {
    loom::rt::spin_yield();
}

/// Whether a model execution is currently driving this thread. Code
/// with *persistent* per-thread randomness (thread-local RNG caches)
/// must not carry that state across executions — the cache on the main
/// virtual thread would survive from one explored schedule to the
/// next, making replay unsound — so it checks this and re-derives from
/// [`thread_rng_seed`] instead.
#[must_use]
pub fn in_model() -> bool {
    loom::rt::in_model()
}

/// A per-thread RNG seed: deterministic (derived from the virtual
/// thread id) inside a model execution, stack-address entropy outside.
/// Always odd, so it can seed xorshift generators directly.
#[must_use]
pub fn thread_rng_seed() -> u64 {
    match loom::rt::thread_id() {
        Some(id) => crate::rng::mix(0x5EED_5EED ^ (id as u64 + 1)) | 1,
        None => {
            let probe = 0u64;
            (std::ptr::from_ref(&probe) as u64) | 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_dfs, Config};
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
    use std::sync::Arc;

    #[test]
    fn seeds_are_deterministic_per_vthread_in_model() {
        let main_seen = Arc::new(StdAtomicU64::new(0));
        let child_seen = Arc::new(StdAtomicU64::new(0));
        let (m, c) = (Arc::clone(&main_seen), Arc::clone(&child_seen));
        explore_dfs(&Config::default(), move || {
            let s0 = thread_rng_seed();
            let h = spawn(thread_rng_seed);
            let s1 = h.join();
            assert_ne!(s0, s1, "threads must get distinct seeds");
            // stash for cross-execution comparison
            m.store(s0, StdOrdering::Relaxed);
            c.store(s1, StdOrdering::Relaxed);
            assert_eq!(s0, thread_rng_seed(), "stable within a thread");
        })
        .expect_ok();
        // same ids across executions -> same seeds (replayability)
        let first = (
            main_seen.load(StdOrdering::Relaxed),
            child_seen.load(StdOrdering::Relaxed),
        );
        let (m2, c2) = (Arc::clone(&main_seen), Arc::clone(&child_seen));
        explore_dfs(&Config::default(), move || {
            assert_eq!(thread_rng_seed(), m2.load(StdOrdering::Relaxed));
            let h = spawn(thread_rng_seed);
            assert_eq!(h.join(), c2.load(StdOrdering::Relaxed));
        })
        .expect_ok();
        assert_eq!(
            first,
            (
                main_seen.load(StdOrdering::Relaxed),
                child_seen.load(StdOrdering::Relaxed)
            )
        );
    }

    #[test]
    fn outside_model_seed_is_odd_entropy() {
        let s = thread_rng_seed();
        assert_eq!(s % 2, 1);
    }
}
