//! The ticket-indexed cell ring shared by the queue and the pool.
//!
//! A ring of `capacity` cells, each guarded by a *turn* counter. The
//! holder of put-ticket `t` writes into cell `t % capacity` during turn
//! `2·(t / capacity)`; the holder of get-ticket `t` reads the same cell
//! during turn `2·(t / capacity) + 1`. Tickets come from the caller
//! (a counting network or any other [`cnet_concurrent::Counter`]), so
//! the ring itself never becomes a contention hot-spot: each ticket
//! touches exactly one cell.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// One cell: a turn counter plus the slot payload.
#[derive(Debug)]
struct Cell<T> {
    turn: AtomicU64,
    value: Mutex<Option<T>>,
}

/// A fixed-capacity ring of rendezvous cells.
#[derive(Debug)]
pub struct TicketRing<T> {
    cells: Vec<Cell<T>>,
}

impl<T> TicketRing<T> {
    /// Creates a ring with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        TicketRing {
            cells: (0..capacity)
                .map(|_| Cell {
                    turn: AtomicU64::new(0),
                    value: Mutex::new(None),
                })
                .collect(),
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    fn wait_for_turn(&self, cell: &Cell<T>, turn: u64) {
        let mut spins = 0u32;
        while cell.turn.load(Ordering::Acquire) != turn {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(128) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Deposits `value` under put-ticket `ticket`, blocking (spinning)
    /// until the cell's round comes up.
    pub fn put(&self, ticket: u64, value: T) {
        let cap = self.cells.len() as u64;
        let cell = &self.cells[(ticket % cap) as usize];
        let round = ticket / cap;
        self.wait_for_turn(cell, 2 * round);
        *cell.value.lock() = Some(value);
        cell.turn.store(2 * round + 1, Ordering::Release);
    }

    /// Removes the value under get-ticket `ticket`, blocking (spinning)
    /// until the matching put has happened.
    pub fn take(&self, ticket: u64) -> T {
        let cap = self.cells.len() as u64;
        let cell = &self.cells[(ticket % cap) as usize];
        let round = ticket / cap;
        self.wait_for_turn(cell, 2 * round + 1);
        let value = cell.value.lock().take().expect("turn guarantees a deposit");
        cell.turn.store(2 * round + 2, Ordering::Release);
        value
    }

    /// Attempts [`Self::take`] without blocking: returns the value only
    /// if the matching put has already completed. Callers own ticket
    /// management — a `None` leaves the cell untouched, so the same
    /// ticket can be retried.
    pub fn try_take(&self, ticket: u64) -> Option<T> {
        let cap = self.cells.len() as u64;
        let cell = &self.cells[(ticket % cap) as usize];
        let round = ticket / cap;
        if cell.turn.load(Ordering::Acquire) != 2 * round + 1 {
            return None;
        }
        let value = cell.value.lock().take().expect("turn guarantees a deposit");
        cell.turn.store(2 * round + 2, Ordering::Release);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_round_trip() {
        let ring = TicketRing::new(2);
        ring.put(0, "a");
        ring.put(1, "b");
        assert_eq!(ring.take(0), "a");
        assert_eq!(ring.take(1), "b");
        // ring wraps: ticket 2 reuses cell 0
        ring.put(2, "c");
        assert_eq!(ring.take(2), "c");
    }

    #[test]
    fn try_take_fails_before_put() {
        let ring: TicketRing<u32> = TicketRing::new(2);
        assert!(ring.try_take(0).is_none());
        ring.put(0, 7);
        assert_eq!(ring.try_take(0), Some(7));
        assert!(ring.try_take(2).is_none(), "next round not produced yet");
    }

    #[test]
    fn put_blocks_until_previous_round_consumed() {
        let ring = Arc::new(TicketRing::new(1));
        ring.put(0, 1u32);
        let r = Arc::clone(&ring);
        let producer = std::thread::spawn(move || {
            // blocks until ticket 0 is consumed
            r.put(1, 2u32);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!producer.is_finished(), "round 1 put must wait");
        assert_eq!(ring.take(0), 1);
        producer.join().expect("producer completes");
        assert_eq!(ring.take(1), 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let ring = Arc::new(TicketRing::new(4));
        let next_put = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let next_get = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let ring = Arc::clone(&ring);
            let tickets = Arc::clone(&next_put);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let t = tickets.fetch_add(1, Ordering::Relaxed);
                    ring.put(t, t);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let ring = Arc::clone(&ring);
            let tickets = Arc::clone(&next_get);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..500 {
                    let t = tickets.fetch_add(1, Ordering::Relaxed);
                    got.push(ring.take(t));
                }
                got
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: TicketRing<u8> = TicketRing::new(0);
    }
}
