//! FIFO auditing: does the queue respect real-time enqueue order?
//!
//! Every enqueue and dequeue is bracketed by a global logical clock.
//! Item `b` is *out of FIFO order* when some item `a` satisfies both
//!
//! * `enq(a)` completely precedes `enq(b)` in real time, and
//! * `deq(b)` completely precedes `deq(a)` in real time
//!
//! (overlapping operations impose no constraint — the standard
//! queue-linearizability reading). This is the data-structure face of
//! the paper's Definition 2.4: with linearizable ticket counters no
//! such pair can exist; with counting-network tickets the violations
//! are exactly the counting non-linearizabilities.
//!
//! [`FifoReport::out_of_order`] runs the same `O(n log n)` sweep as the
//! counting checker: scanning items by enqueue start, it maintains the
//! maximum dequeue *start* among items whose enqueue already finished —
//! `b` is a victim exactly when that maximum exceeds `b`'s dequeue
//! *end*.

use std::sync::atomic::{AtomicU64, Ordering};

use cnet_concurrent::counter::Counter;

use crate::queue::NetQueue;

/// One audited item: both operation intervals in logical-clock ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemRecord {
    /// The item id (as enqueued).
    pub item: u64,
    /// The producing thread.
    pub producer: usize,
    /// Enqueue interval.
    pub enq: (u64, u64),
    /// Dequeue interval.
    pub deq: (u64, u64),
}

/// The outcome of a [`fifo_audit`].
#[derive(Debug, Clone)]
pub struct FifoReport {
    /// One record per item.
    pub records: Vec<ItemRecord>,
}

impl FifoReport {
    /// Items dequeued out of real-time FIFO order, in `O(n log n)`.
    #[must_use]
    pub fn out_of_order(&self) -> usize {
        let mut by_enq_start: Vec<&ItemRecord> = self.records.iter().collect();
        by_enq_start.sort_unstable_by_key(|r| r.enq.0);
        let mut by_enq_end: Vec<&ItemRecord> = self.records.iter().collect();
        by_enq_end.sort_unstable_by_key(|r| r.enq.1);

        let mut victims = 0usize;
        let mut finished = 0usize;
        let mut max_deq_start: Option<u64> = None;
        for b in by_enq_start {
            while finished < by_enq_end.len() && by_enq_end[finished].enq.1 < b.enq.0 {
                let ds = by_enq_end[finished].deq.0;
                max_deq_start = Some(max_deq_start.map_or(ds, |m| m.max(ds)));
                finished += 1;
            }
            if let Some(m) = max_deq_start {
                if b.deq.1 < m {
                    victims += 1;
                }
            }
        }
        victims
    }

    /// Quadratic reference implementation of [`Self::out_of_order`],
    /// for differential testing.
    #[must_use]
    pub fn out_of_order_naive(&self) -> usize {
        self.records
            .iter()
            .filter(|b| {
                self.records
                    .iter()
                    .any(|a| a.enq.1 < b.enq.0 && b.deq.1 < a.deq.0)
            })
            .count()
    }

    /// Out-of-order items as a fraction of all items.
    #[must_use]
    pub fn out_of_order_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.out_of_order() as f64 / self.records.len() as f64
    }

    /// Whether every enqueued item was dequeued exactly once.
    #[must_use]
    pub fn conserved(&self, expected_items: usize) -> bool {
        if self.records.len() != expected_items {
            return false;
        }
        let mut items: Vec<u64> = self.records.iter().map(|r| r.item).collect();
        items.sort_unstable();
        items.iter().enumerate().all(|(i, &v)| v == i as u64)
    }
}

/// Runs `producers` enqueuing threads (each inserting `per_producer`
/// items) against `consumers` dequeuing threads over `queue`, and
/// reports the real-time FIFO violations.
///
/// # Panics
///
/// Panics if `producers * per_producer` is not divisible by
/// `consumers`, or if a worker thread panics.
#[must_use]
pub fn fifo_audit<E: Counter, D: Counter>(
    queue: &NetQueue<u64, E, D>,
    producers: usize,
    consumers: usize,
    per_producer: usize,
) -> FifoReport {
    let total = producers * per_producer;
    assert_eq!(
        total % consumers,
        0,
        "items must divide evenly across consumers"
    );
    let clock = AtomicU64::new(0);

    let mut enq_intervals: Vec<(u64, u64)> = vec![(0, 0); total];
    let mut deq_intervals: Vec<(usize, (u64, u64))> = Vec::with_capacity(total);
    crossbeam::scope(|scope| {
        let mut enqueuers = Vec::new();
        for p in 0..producers {
            let clock = &clock;
            let queue = &queue;
            enqueuers.push(scope.spawn(move |_| {
                let mut local = Vec::with_capacity(per_producer);
                for i in 0..per_producer {
                    let item = (p * per_producer + i) as u64;
                    let start = clock.fetch_add(1, Ordering::AcqRel);
                    queue.enqueue(item);
                    let end = clock.fetch_add(1, Ordering::AcqRel);
                    local.push((item as usize, start, end));
                }
                local
            }));
        }
        let mut dequeuers = Vec::new();
        for _ in 0..consumers {
            let clock = &clock;
            let queue = &queue;
            dequeuers.push(scope.spawn(move |_| {
                let mut local = Vec::with_capacity(total / consumers);
                for _ in 0..total / consumers {
                    let start = clock.fetch_add(1, Ordering::AcqRel);
                    let item = queue.dequeue();
                    let end = clock.fetch_add(1, Ordering::AcqRel);
                    local.push((item as usize, start, end));
                }
                local
            }));
        }
        for h in enqueuers {
            for (item, start, end) in h.join().expect("producer thread") {
                enq_intervals[item] = (start, end);
            }
        }
        for h in dequeuers {
            for (item, start, end) in h.join().expect("consumer thread") {
                deq_intervals.push((item, (start, end)));
            }
        }
    })
    .expect("audit scope");

    let records = deq_intervals
        .into_iter()
        .map(|(item, deq)| ItemRecord {
            item: item as u64,
            producer: item / per_producer,
            enq: enq_intervals[item],
            deq,
        })
        .collect();
    FifoReport { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_concurrent::counter::FetchAddCounter;
    use cnet_concurrent::network::NetworkCounter;
    use cnet_topology::constructions;
    use proptest::prelude::*;

    #[test]
    fn linearizable_queue_is_fifo() {
        let queue = NetQueue::with_counters(16, FetchAddCounter::new(), FetchAddCounter::new());
        let report = fifo_audit(&queue, 2, 2, 1000);
        assert!(report.conserved(2000));
        assert_eq!(
            report.out_of_order(),
            0,
            "fetch-add tickets are strictly FIFO"
        );
    }

    #[test]
    fn network_queue_conserves_and_reports() {
        let net = constructions::bitonic(4).unwrap();
        let queue: NetQueue<u64, NetworkCounter, NetworkCounter> = NetQueue::over_network(16, &net);
        let report = fifo_audit(&queue, 2, 2, 1000);
        assert!(report.conserved(2000));
        assert_eq!(report.out_of_order(), report.out_of_order_naive());
        assert!(report.out_of_order_ratio() <= 1.0);
    }

    #[test]
    fn hand_built_violation_detected() {
        // a: enq [0,1], deq [10,11]; b: enq [2,3], deq [4,5]
        // enq(a) < enq(b) but deq(b) < deq(a): b is out of order
        let report = FifoReport {
            records: vec![
                ItemRecord {
                    item: 0,
                    producer: 0,
                    enq: (0, 1),
                    deq: (10, 11),
                },
                ItemRecord {
                    item: 1,
                    producer: 0,
                    enq: (2, 3),
                    deq: (4, 5),
                },
            ],
        };
        assert_eq!(report.out_of_order(), 1);
        assert_eq!(report.out_of_order_naive(), 1);
    }

    #[test]
    fn overlapping_dequeues_are_not_violations() {
        // same enqueue order but dequeues overlap: allowed
        let report = FifoReport {
            records: vec![
                ItemRecord {
                    item: 0,
                    producer: 0,
                    enq: (0, 1),
                    deq: (4, 11),
                },
                ItemRecord {
                    item: 1,
                    producer: 0,
                    enq: (2, 3),
                    deq: (5, 6),
                },
            ],
        };
        assert_eq!(report.out_of_order(), 0);
    }

    #[test]
    fn conserved_detects_loss_and_duplication() {
        let rec = |item| ItemRecord {
            item,
            producer: 0,
            enq: (0, 1),
            deq: (2, 3),
        };
        let good = FifoReport {
            records: vec![rec(0), rec(1)],
        };
        assert!(good.conserved(2));
        assert!(!good.conserved(3), "wrong cardinality");
        let dup = FifoReport {
            records: vec![rec(0), rec(0)],
        };
        assert!(!dup.conserved(2), "duplicate item");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_split_panics() {
        let queue: NetQueue<u64, _, _> =
            NetQueue::with_counters(4, FetchAddCounter::new(), FetchAddCounter::new());
        let _ = fifo_audit(&queue, 1, 3, 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The sweep agrees with the quadratic reference on arbitrary
        /// interval sets.
        #[test]
        fn sweep_matches_naive(
            raw in proptest::collection::vec(
                ((0u64..60, 1u64..10), (0u64..60, 1u64..10)), 0..50)
        ) {
            let records: Vec<ItemRecord> = raw
                .iter()
                .enumerate()
                .map(|(i, &((es, el), (ds, dl)))| ItemRecord {
                    item: i as u64,
                    producer: 0,
                    enq: (es, es + el),
                    deq: (ds, ds + dl),
                })
                .collect();
            let report = FifoReport { records };
            prop_assert_eq!(report.out_of_order(), report.out_of_order_naive());
        }
    }
}
