//! Concurrent data structures built on counting networks.
//!
//! The paper's introduction motivates linearizable counting as the
//! heart of "concurrent timestamp generation, as well as concurrent
//! implementations of shared counters, FIFO buffers, priority queues
//! and similar data structures". This crate builds those structures on
//! top of the counters from `cnet-concurrent`, and measures how
//! counting-level non-linearizability surfaces at the data-structure
//! level:
//!
//! * [`queue::NetQueue`] — a bounded MPMC FIFO buffer: producers and
//!   consumers each draw a ticket from a shared counter and rendezvous
//!   in a cell ring. With a linearizable ticket counter the queue is
//!   strictly FIFO; with a counting-network counter it is *practically*
//!   FIFO, in exactly the paper's sense.
//! * [`pool::NetPool`] — the relaxed cousin: a bag with `put`/`get`
//!   whose only guarantee is that every inserted item is removed
//!   exactly once. Counting networks implement it without any central
//!   hot-spot.
//! * [`allocator::BlockAllocator`] — batched unique-id allocation:
//!   one shared-counter operation per block of ids, unique under mere
//!   counting (no linearizability needed).
//! * [`stack::ElimStack`] — an elimination-backoff stack: the
//!   diffraction idea applied to LIFO, per Shavit–Touitou's elimination
//!   trees — complementary push/pop pairs cancel in a scattering array
//!   without touching the central stack.
//! * [`timestamp::TimestampOracle`] — unique, roughly-ordered
//!   timestamps, plus an audit that counts *causality reversals*
//!   (timestamp pairs ordered against their real-time draw order).
//! * [`audit`] — the FIFO audit: dequeue order vs the real-time order
//!   of enqueue completions, reusing the paper's Definition 2.4 checker
//!   verbatim (an out-of-FIFO pair *is* a non-linearizable counting
//!   pair).
//!
//! # Example
//!
//! ```
//! use cnet_structures::queue::NetQueue;
//! use cnet_concurrent::counter::FetchAddCounter;
//!
//! // a queue with linearizable (fetch-add) ticket counters
//! let q = NetQueue::with_counters(8, FetchAddCounter::new(), FetchAddCounter::new());
//! q.enqueue("a");
//! q.enqueue("b");
//! assert_eq!(q.dequeue(), "a");
//! assert_eq!(q.dequeue(), "b");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator;
pub mod audit;
pub mod pool;
pub mod queue;
pub mod ring;
pub mod stack;
pub mod timestamp;

pub use pool::NetPool;
pub use queue::NetQueue;
pub use timestamp::TimestampOracle;
