//! An elimination-backoff stack.
//!
//! The diffracting-tree idea — let complementary operations cancel in
//! a scattering array instead of hitting the shared hot-spot — applies
//! directly to stacks, as in the elimination trees of Shavit and
//! Touitou (the paper's reference 20): a `push` and a `pop` that meet
//! exchange the value and never touch the central stack at all. That
//! pairing is a valid linearization (the push immediately followed by
//! the pop), so LIFO semantics are preserved.
//!
//! The implementation keeps the central stack and each slot behind
//! small mutexes (the crate forbids `unsafe`); slot occupancies carry
//! unique stamps so a timed-out operation can tell its own residue from
//! a later occupant's.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// The state of one elimination slot. Stamps identify the occupant so
/// cleanups after a timeout never touch somebody else's state.
#[derive(Debug)]
enum Slot<T> {
    /// Nobody here.
    Empty,
    /// Push `stamp` is waiting with its value.
    PushWaiting { stamp: u64, value: Option<T> },
    /// Pop `stamp` is waiting for a value.
    PopWaiting { stamp: u64 },
    /// A push handed its value to the waiting pop `stamp`.
    Handoff { stamp: u64, value: Option<T> },
}

/// How a push's elimination attempt ended.
#[derive(Debug)]
enum Attempt<T> {
    /// The value was handed to a concurrent pop.
    Eliminated,
    /// No partner; the caller gets the value back.
    Failed(T),
}

thread_local! {
    static SLOT_RNG: Cell<u64> = const { Cell::new(0) };
}

fn thread_rand() -> u64 {
    SLOT_RNG.with(|c| {
        let mut x = c.get();
        if x == 0 {
            let probe = 0u64;
            x = (&probe as *const u64 as u64) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        x
    })
}

/// A concurrent LIFO stack with an elimination array in front of the
/// central stack.
///
/// # Example
///
/// ```
/// use cnet_structures::stack::ElimStack;
///
/// let s = ElimStack::new(4, 64);
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
#[derive(Debug)]
pub struct ElimStack<T> {
    stack: Mutex<Vec<T>>,
    slots: Vec<Mutex<Slot<T>>>,
    spin: u32,
    eliminations: AtomicU64,
    stamps: AtomicU64,
}

impl<T> ElimStack<T> {
    /// Creates a stack with `slots` elimination slots and the given
    /// spin budget (iterations a waiter spends in a slot).
    ///
    /// `slots == 0` disables elimination entirely (pure central stack).
    #[must_use]
    pub fn new(slots: usize, spin: u32) -> Self {
        ElimStack {
            stack: Mutex::new(Vec::new()),
            slots: (0..slots).map(|_| Mutex::new(Slot::Empty)).collect(),
            spin,
            eliminations: AtomicU64::new(0),
            stamps: AtomicU64::new(1),
        }
    }

    /// The number of push/pop pairs that cancelled in the elimination
    /// array (never touching the central stack).
    #[must_use]
    pub fn eliminations(&self) -> u64 {
        self.eliminations.load(Ordering::Relaxed)
    }

    /// A snapshot of the central stack's size (elimination pairs never
    /// appear here).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stack.lock().len()
    }

    /// Whether the central stack is empty right now.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn pick_slot(&self) -> Option<usize> {
        if self.slots.is_empty() {
            None
        } else {
            Some((thread_rand() % self.slots.len() as u64) as usize)
        }
    }

    fn new_stamp(&self) -> u64 {
        self.stamps.fetch_add(1, Ordering::Relaxed)
    }

    /// Pushes a value (always succeeds; eliminates with a concurrent
    /// pop when possible).
    pub fn push(&self, value: T) {
        let value = match self.try_eliminate_push(value) {
            Attempt::Eliminated => return,
            Attempt::Failed(v) => v,
        };
        self.stack.lock().push(value);
    }

    /// Pops a value: a value handed over by a concurrent push, or the
    /// top of the central stack, or `None` if both come up empty.
    pub fn pop(&self) -> Option<T> {
        if let Some(v) = self.try_eliminate_pop() {
            return Some(v);
        }
        self.stack.lock().pop()
    }

    /// Push side of the elimination protocol.
    fn try_eliminate_push(&self, value: T) -> Attempt<T> {
        let Some(slot_idx) = self.pick_slot() else {
            return Attempt::Failed(value);
        };
        let slot = &self.slots[slot_idx];
        let my_stamp = self.new_stamp();
        {
            let mut s = slot.lock();
            match &mut *s {
                Slot::Empty => {
                    *s = Slot::PushWaiting {
                        stamp: my_stamp,
                        value: Some(value),
                    };
                }
                Slot::PopWaiting { stamp } => {
                    // a pop is waiting: hand the value over to it
                    let pop_stamp = *stamp;
                    *s = Slot::Handoff {
                        stamp: pop_stamp,
                        value: Some(value),
                    };
                    self.eliminations.fetch_add(1, Ordering::Relaxed);
                    return Attempt::Eliminated;
                }
                _ => return Attempt::Failed(value),
            }
        }
        // wait for a pop to take the value
        for _ in 0..self.spin {
            std::hint::spin_loop();
        }
        let mut s = slot.lock();
        if let Slot::PushWaiting { stamp, value } = &mut *s {
            if *stamp == my_stamp {
                // nobody came: reclaim our own value
                let v = value.take().expect("value still in our slot");
                *s = Slot::Empty;
                return Attempt::Failed(v);
            }
        }
        // our value is gone (a pop consumed it); whatever occupies the
        // slot now belongs to someone else — leave it alone
        self.eliminations.fetch_add(1, Ordering::Relaxed);
        Attempt::Eliminated
    }

    /// Pop side of the elimination protocol.
    fn try_eliminate_pop(&self) -> Option<T> {
        let slot_idx = self.pick_slot()?;
        let slot = &self.slots[slot_idx];
        let my_stamp = self.new_stamp();
        {
            let mut s = slot.lock();
            match &mut *s {
                Slot::PushWaiting { value, .. } => {
                    // take the waiting push's value; it will observe the
                    // stamp change and report elimination
                    let v = value.take().expect("push left its value");
                    *s = Slot::Empty;
                    return Some(v);
                }
                Slot::Empty => *s = Slot::PopWaiting { stamp: my_stamp },
                _ => return None,
            }
        }
        // wait for a push to hand a value over
        for _ in 0..self.spin {
            std::hint::spin_loop();
        }
        let mut s = slot.lock();
        match &mut *s {
            Slot::Handoff { stamp, value } if *stamp == my_stamp => {
                let v = value.take().expect("push put a value in the handoff");
                *s = Slot::Empty;
                Some(v)
            }
            Slot::PopWaiting { stamp } if *stamp == my_stamp => {
                // nobody came: withdraw
                *s = Slot::Empty;
                None
            }
            // somebody else's state (unreachable under the stamp
            // protocol, but never touch it regardless)
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_lifo() {
        let s = ElimStack::new(0, 0);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn no_slots_means_no_elimination() {
        let s = ElimStack::new(0, 0);
        s.push(7);
        assert_eq!(s.pop(), Some(7));
        assert_eq!(s.eliminations(), 0);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let s = Arc::new(ElimStack::new(4, 2_000));
        let mut pushers = Vec::new();
        for t in 0..2u64 {
            let s = Arc::clone(&s);
            pushers.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    s.push(t * 2_000 + i);
                }
            }));
        }
        let mut poppers = Vec::new();
        for _ in 0..2 {
            let s = Arc::clone(&s);
            poppers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 2_000 {
                    if let Some(v) = s.pop() {
                        got.push(v);
                    }
                }
                got
            }));
        }
        for p in pushers {
            p.join().expect("pusher");
        }
        let mut all: Vec<u64> = poppers
            .into_iter()
            .flat_map(|p| p.join().expect("popper"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..4_000).collect::<Vec<u64>>());
        assert!(s.is_empty());
    }

    #[test]
    fn elimination_happens_under_symmetric_load() {
        let s = Arc::new(ElimStack::new(1, 50_000));
        let a = Arc::clone(&s);
        let pusher = std::thread::spawn(move || {
            for i in 0..3_000 {
                a.push(i);
            }
        });
        let b = Arc::clone(&s);
        let popper = std::thread::spawn(move || {
            let mut got = 0;
            while got < 3_000 {
                if b.pop().is_some() {
                    got += 1;
                }
            }
        });
        pusher.join().expect("pusher");
        popper.join().expect("popper");
        // a single slot with big spin windows: some pairs must cancel
        assert!(s.eliminations() > 0, "no eliminations under symmetric load");
        assert!(s.is_empty());
    }

    #[test]
    fn pop_on_empty_is_none_even_with_slots() {
        let s: ElimStack<u8> = ElimStack::new(2, 10);
        assert_eq!(s.pop(), None);
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn stale_cleanup_never_steals_a_newer_occupant() {
        // single-threaded simulation of the race: a push times out, but
        // before its cleanup a pop consumed the value and a *new* push
        // moved in. The first push must report elimination and leave
        // the newcomer alone. We drive the protocol directly.
        let s = ElimStack::new(1, 0); // zero spin: immediate timeout path
                                      // push 1: spin==0, nobody meets it, reclaim succeeds
        s.push(41u64);
        assert_eq!(s.len(), 1, "timed-out push falls back to the stack");
        assert_eq!(s.pop(), Some(41));
    }
}
