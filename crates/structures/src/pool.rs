//! A relaxed shared pool (bag) over counting networks.
//!
//! The pool guarantees only *conservation*: every item put in is taken
//! out exactly once, and `get` never invents items. There is no
//! ordering contract at all, which is exactly the specification the
//! Shavit–Touitou elimination-tree pools target — and why a counting
//! network (linearizable or not!) implements it perfectly: the step
//! property alone keeps producers and consumers matched.
//!
//! Internally the pool is a ring of independent per-cell item stacks;
//! put-tickets scatter producers across the cells and get-tickets
//! scatter consumers the same way, so with a low-contention counter the
//! pool has no hot-spot.

use cnet_concurrent::counter::Counter;
use cnet_concurrent::network::NetworkCounter;
use cnet_topology::Topology;
use parking_lot::Mutex;

/// A bounded-width (not bounded-size) relaxed bag.
#[derive(Debug)]
pub struct NetPool<T, E: Counter = NetworkCounter, D: Counter = NetworkCounter> {
    cells: Vec<Mutex<Vec<T>>>,
    put_tickets: E,
    get_tickets: D,
}

impl<T> NetPool<T, NetworkCounter, NetworkCounter> {
    /// Builds a pool scattered over `width` cells, with counting
    /// networks over `topology` as ticket sources.
    #[must_use]
    pub fn over_network(width: usize, topology: &Topology) -> Self {
        Self::with_counters(
            width,
            NetworkCounter::new(topology),
            NetworkCounter::new(topology),
        )
    }
}

impl<T, E: Counter, D: Counter> NetPool<T, E, D> {
    /// Builds a pool from explicit ticket counters (fresh, starting at
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_counters(width: usize, put_tickets: E, get_tickets: D) -> Self {
        assert!(width > 0, "pool width must be positive");
        NetPool {
            cells: (0..width).map(|_| Mutex::new(Vec::new())).collect(),
            put_tickets,
            get_tickets,
        }
    }

    /// The number of scatter cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// Inserts an item. Never blocks (cells grow).
    pub fn put(&self, value: T) {
        let ticket = self.put_tickets.next();
        let cell = &self.cells[(ticket % self.cells.len() as u64) as usize];
        cell.lock().push(value);
    }

    /// Removes *some* item, spinning until one is available in the
    /// cell this consumer's ticket maps to (a matching `put` with the
    /// same ticket index is guaranteed to target that cell eventually,
    /// because put- and get-tickets are matched one to one by the step
    /// property).
    pub fn get(&self) -> T {
        let ticket = self.get_tickets.next();
        let cell = &self.cells[(ticket % self.cells.len() as u64) as usize];
        let mut spins = 0u32;
        loop {
            if let Some(v) = cell.lock().pop() {
                return v;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Removes an item if any cell has one right now.
    ///
    /// Unlike [`Self::get`] this draws *no* ticket (a failed draw would
    /// leave a future `get` waiting on a cell that never receives its
    /// matching `put`); it simply scans the cells.
    pub fn try_get(&self) -> Option<T> {
        self.cells.iter().find_map(|cell| cell.lock().pop())
    }

    /// A snapshot count of resident items (approximate under
    /// concurrency).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.iter().map(|c| c.lock().len()).sum()
    }

    /// Whether the snapshot count is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_concurrent::counter::FetchAddCounter;
    use cnet_topology::constructions;
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip() {
        let pool = NetPool::with_counters(4, FetchAddCounter::new(), FetchAddCounter::new());
        pool.put(1u32);
        pool.put(2);
        assert_eq!(pool.len(), 2);
        let a = pool.get();
        let b = pool.get();
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(pool.is_empty());
    }

    #[test]
    fn try_get_on_empty_is_none() {
        let pool: NetPool<u8, _, _> =
            NetPool::with_counters(2, FetchAddCounter::new(), FetchAddCounter::new());
        assert_eq!(pool.try_get(), None);
    }

    #[test]
    fn conserves_items_under_concurrency() {
        let net = constructions::bitonic(4).unwrap();
        let pool = Arc::new(NetPool::over_network(4, &net));
        let mut producers = Vec::new();
        for p in 0..2u64 {
            let pool = Arc::clone(&pool);
            producers.push(std::thread::spawn(move || {
                for i in 0..800 {
                    pool.put(p * 800 + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            consumers.push(std::thread::spawn(move || {
                (0..800).map(|_| pool.get()).collect::<Vec<u64>>()
            }));
        }
        for h in producers {
            h.join().expect("producer");
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1600).collect::<Vec<u64>>());
        assert!(pool.is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _: NetPool<u8, _, _> =
            NetPool::with_counters(0, FetchAddCounter::new(), FetchAddCounter::new());
    }
}
