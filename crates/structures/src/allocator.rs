//! Batched unique-id allocation over a shared counter.
//!
//! The classic way to amortize a shared counter: each client reserves a
//! whole *block* of ids with one counter operation and then hands them
//! out locally. Uniqueness needs only the counting property (every
//! block index is granted exactly once), so a counting network backs
//! this perfectly even where its linearizability lapses — ids from
//! different blocks are merely not globally ordered by allocation
//! time, which block allocation already gave up on.

use cnet_concurrent::counter::Counter;

/// A shared source of disjoint id blocks.
#[derive(Debug)]
pub struct BlockAllocator<C: Counter> {
    counter: C,
    block_size: u64,
}

impl<C: Counter> BlockAllocator<C> {
    /// Wraps a fresh counter; each counter value grants the id range
    /// `[value * block_size, (value + 1) * block_size)`.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(counter: C, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockAllocator {
            counter,
            block_size,
        }
    }

    /// The configured block size.
    #[must_use]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Reserves the next block directly (one shared-counter operation).
    pub fn reserve_block(&self) -> std::ops::Range<u64> {
        let index = self.counter.next();
        let start = index * self.block_size;
        start..start + self.block_size
    }

    /// Creates a per-thread handle that caches a block and refills on
    /// demand.
    pub fn handle(&self) -> BlockHandle<'_, C> {
        BlockHandle {
            allocator: self,
            next: 0,
            end: 0,
        }
    }
}

/// A client-local id dispenser; one shared-counter operation per
/// `block_size` ids.
#[derive(Debug)]
pub struct BlockHandle<'a, C: Counter> {
    allocator: &'a BlockAllocator<C>,
    next: u64,
    end: u64,
}

impl<C: Counter> BlockHandle<'_, C> {
    /// Takes the next id, reserving a fresh block when the cached one
    /// is exhausted.
    pub fn next_id(&mut self) -> u64 {
        if self.next == self.end {
            let block = self.allocator.reserve_block();
            self.next = block.start;
            self.end = block.end;
        }
        let id = self.next;
        self.next += 1;
        id
    }

    /// How many ids remain in the cached block.
    #[must_use]
    pub fn cached(&self) -> u64 {
        self.end - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_concurrent::counter::FetchAddCounter;
    use cnet_concurrent::network::NetworkCounter;
    use cnet_topology::constructions;
    use std::sync::Arc;

    #[test]
    fn blocks_are_disjoint_and_sequential() {
        let a = BlockAllocator::new(FetchAddCounter::new(), 10);
        assert_eq!(a.reserve_block(), 0..10);
        assert_eq!(a.reserve_block(), 10..20);
        assert_eq!(a.block_size(), 10);
    }

    #[test]
    fn handle_amortizes_counter_operations() {
        let a = BlockAllocator::new(FetchAddCounter::new(), 4);
        let mut h = a.handle();
        let ids: Vec<u64> = (0..6).map(|_| h.next_id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(h.cached(), 2);
    }

    #[test]
    fn ids_are_unique_across_threads_over_a_network() {
        let net = constructions::bitonic(4).unwrap();
        let a = Arc::new(BlockAllocator::new(NetworkCounter::new(&net), 16));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut h = a.handle();
                (0..1000).map(|_| h.next_id()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every id unique");
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = BlockAllocator::new(FetchAddCounter::new(), 0);
    }
}
