//! Timestamp generation over a shared counter.
//!
//! Concurrent timestamping is the paper's first-listed application of
//! linearizable counting. A [`TimestampOracle`] wraps any counter and
//! hands out unique, monotone-per-thread timestamps; the
//! [`causality_audit`] measures *causality reversals*: pairs of draws
//! where one thread finished drawing `t1` before another thread began
//! drawing `t2`, yet `t1 > t2`. With a linearizable counter reversals
//! are impossible; with a counting network they are exactly the
//! non-linearizable operations of Definition 2.4.

use std::sync::atomic::{AtomicU64, Ordering};

use cnet_concurrent::counter::Counter;
use cnet_timing::{linearizability, Operation};

/// A timestamp drawn from an oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

/// Unique-timestamp source over any [`Counter`].
#[derive(Debug)]
pub struct TimestampOracle<C: Counter> {
    counter: C,
}

impl<C: Counter> TimestampOracle<C> {
    /// Wraps a fresh counter (starting at zero).
    #[must_use]
    pub fn new(counter: C) -> Self {
        TimestampOracle { counter }
    }

    /// Draws the next timestamp. Uniqueness is unconditional;
    /// real-time ordering holds up to the counter's linearizability.
    pub fn draw(&self) -> Timestamp {
        Timestamp(self.counter.next())
    }

    /// Consumes the oracle, returning the underlying counter.
    pub fn into_inner(self) -> C {
        self.counter
    }
}

/// The outcome of a [`causality_audit`].
#[derive(Debug, Clone)]
pub struct CausalityReport {
    /// One record per draw: interval in logical-clock ticks, value =
    /// the timestamp.
    pub draws: Vec<Operation>,
}

impl CausalityReport {
    /// Draw pairs ordered against real time (reversals), counted per
    /// victim draw.
    #[must_use]
    pub fn reversals(&self) -> usize {
        linearizability::count_nonlinearizable(&self.draws)
    }

    /// Reversals as a fraction of all draws.
    #[must_use]
    pub fn reversal_ratio(&self) -> f64 {
        linearizability::nonlinearizable_ratio(&self.draws)
    }

    /// Whether every timestamp was unique (always true for correct
    /// counters).
    #[must_use]
    pub fn all_unique(&self) -> bool {
        let mut values: Vec<u64> = self.draws.iter().map(|o| o.value).collect();
        values.sort_unstable();
        values.windows(2).all(|w| w[0] != w[1])
    }
}

/// Runs `threads` threads drawing `draws_per_thread` timestamps each,
/// bracketing every draw with a global logical clock, and reports the
/// causality reversals.
///
/// # Panics
///
/// Panics if a worker thread panics.
#[must_use]
pub fn causality_audit<C: Counter>(
    oracle: &TimestampOracle<C>,
    threads: usize,
    draws_per_thread: usize,
) -> CausalityReport {
    let clock = AtomicU64::new(0);
    let mut draws = Vec::with_capacity(threads * draws_per_thread);
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let clock = &clock;
            let oracle = &oracle;
            handles.push(scope.spawn(move |_| {
                let mut local = Vec::with_capacity(draws_per_thread);
                for _ in 0..draws_per_thread {
                    let start = clock.fetch_add(1, Ordering::AcqRel);
                    let ts = oracle.draw();
                    let end = clock.fetch_add(1, Ordering::AcqRel);
                    local.push((t, start, end, ts.0));
                }
                local
            }));
        }
        for h in handles {
            for (input, start, end, value) in h.join().expect("audit thread") {
                let token = draws.len();
                draws.push(Operation {
                    token,
                    input,
                    start,
                    end,
                    counter: 0,
                    value,
                });
            }
        }
    })
    .expect("audit scope");
    CausalityReport { draws }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_concurrent::counter::FetchAddCounter;
    use cnet_concurrent::network::NetworkCounter;
    use cnet_topology::constructions;

    #[test]
    fn draws_are_unique_and_monotone_single_thread() {
        let oracle = TimestampOracle::new(FetchAddCounter::new());
        let a = oracle.draw();
        let b = oracle.draw();
        assert!(a < b);
        assert_eq!(a, Timestamp(0));
    }

    #[test]
    fn linearizable_oracle_has_no_reversals() {
        let oracle = TimestampOracle::new(FetchAddCounter::new());
        let report = causality_audit(&oracle, 4, 1000);
        assert_eq!(report.draws.len(), 4000);
        assert!(report.all_unique());
        assert_eq!(report.reversals(), 0);
    }

    #[test]
    fn network_oracle_is_unique_and_reports_a_ratio() {
        let net = constructions::bitonic(4).unwrap();
        let oracle = TimestampOracle::new(NetworkCounter::new(&net));
        let report = causality_audit(&oracle, 4, 1000);
        assert!(report.all_unique());
        // reversals are machine-dependent; the ratio is just defined
        assert!(report.reversal_ratio() >= 0.0);
    }

    #[test]
    fn into_inner_returns_the_counter() {
        let oracle = TimestampOracle::new(FetchAddCounter::new());
        let _ = oracle.draw();
        let counter = oracle.into_inner();
        assert_eq!(counter.next(), 1);
    }
}
