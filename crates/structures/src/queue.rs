//! A bounded MPMC FIFO buffer over two shared counters.
//!
//! Producers draw a ticket from the *enqueue* counter and deposit into
//! the [`crate::ring::TicketRing`]; consumers draw from the *dequeue*
//! counter and collect. The queue's ordering is exactly the ordering of
//! the ticket counters:
//!
//! * linearizable counters (e.g. a fetch-and-add) give a strictly FIFO
//!   queue;
//! * counting-network counters give a scalable queue that is FIFO up
//!   to counting non-linearizability — the data-structure face of the
//!   paper's result. Use [`crate::audit::fifo_audit`] to measure it.

use cnet_concurrent::counter::Counter;
use cnet_concurrent::network::NetworkCounter;
use cnet_topology::Topology;

use crate::ring::TicketRing;

/// A bounded multi-producer/multi-consumer FIFO buffer.
///
/// `capacity` bounds the number of items in flight: an `enqueue` whose
/// cell still holds an unconsumed item from `capacity` tickets ago
/// blocks (spins) until a consumer drains it, and a `dequeue` blocks
/// until its producer arrives — rendezvous semantics, like a bounded
/// channel.
#[derive(Debug)]
pub struct NetQueue<T, E: Counter = NetworkCounter, D: Counter = NetworkCounter> {
    ring: TicketRing<T>,
    enq: E,
    deq: D,
}

impl<T> NetQueue<T, NetworkCounter, NetworkCounter> {
    /// Builds a queue whose two ticket counters are counting networks
    /// over `topology` (one instance each for enqueue and dequeue).
    #[must_use]
    pub fn over_network(capacity: usize, topology: &Topology) -> Self {
        NetQueue {
            ring: TicketRing::new(capacity),
            enq: NetworkCounter::new(topology),
            deq: NetworkCounter::new(topology),
        }
    }
}

impl<T, E: Counter, D: Counter> NetQueue<T, E, D> {
    /// Builds a queue from explicit ticket counters.
    ///
    /// Both counters must start at zero and be fresh (unshared): the
    /// queue owns the ticket spaces.
    #[must_use]
    pub fn with_counters(capacity: usize, enqueue: E, dequeue: D) -> Self {
        NetQueue {
            ring: TicketRing::new(capacity),
            enq: enqueue,
            deq: dequeue,
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Adds an item, blocking (spinning) while the target cell is
    /// occupied by an item from `capacity` tickets ago.
    pub fn enqueue(&self, value: T) {
        let ticket = self.enq.next();
        self.ring.put(ticket, value);
    }

    /// Removes the item matched to this consumer's ticket, blocking
    /// (spinning) until the producer with the same ticket arrives.
    pub fn dequeue(&self) -> T {
        let ticket = self.deq.next();
        self.ring.take(ticket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_concurrent::counter::FetchAddCounter;
    use cnet_topology::constructions;
    use std::sync::Arc;

    fn drain_all<E: Counter + 'static, D: Counter + 'static>(
        q: Arc<NetQueue<u64, E, D>>,
        producers: usize,
        consumers: usize,
        per_producer: usize,
    ) -> Vec<u64> {
        let total = producers * per_producer;
        assert_eq!(total % consumers, 0);
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.enqueue((p * per_producer + i) as u64);
                }
            }));
        }
        let mut takers = Vec::new();
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            takers.push(std::thread::spawn(move || {
                (0..total / consumers)
                    .map(|_| q.dequeue())
                    .collect::<Vec<u64>>()
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        let mut all: Vec<u64> = takers
            .into_iter()
            .flat_map(|t| t.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn fifo_with_linearizable_counters() {
        let q = NetQueue::with_counters(4, FetchAddCounter::new(), FetchAddCounter::new());
        for i in 0..4 {
            q.enqueue(i);
        }
        for i in 0..4 {
            assert_eq!(q.dequeue(), i);
        }
    }

    #[test]
    fn conserves_items_under_concurrency_fetch_add() {
        let q = Arc::new(NetQueue::with_counters(
            8,
            FetchAddCounter::new(),
            FetchAddCounter::new(),
        ));
        let all = drain_all(q, 2, 2, 600);
        assert_eq!(all, (0..1200).collect::<Vec<u64>>());
    }

    #[test]
    fn conserves_items_over_counting_network() {
        let net = constructions::bitonic(4).unwrap();
        let q = Arc::new(NetQueue::over_network(8, &net));
        let all = drain_all(q, 2, 2, 600);
        assert_eq!(all, (0..1200).collect::<Vec<u64>>());
    }

    #[test]
    fn rendezvous_blocks_consumer_until_producer() {
        let q: Arc<NetQueue<u32, FetchAddCounter, FetchAddCounter>> = Arc::new(
            NetQueue::with_counters(2, FetchAddCounter::new(), FetchAddCounter::new()),
        );
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.dequeue());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!consumer.is_finished(), "dequeue must wait for a producer");
        q.enqueue(9);
        assert_eq!(consumer.join().expect("consumer"), 9);
    }

    #[test]
    fn capacity_is_reported() {
        let q: NetQueue<u8, _, _> =
            NetQueue::with_counters(16, FetchAddCounter::new(), FetchAddCounter::new());
        assert_eq!(q.capacity(), 16);
    }
}
