//! Theorem 4.1 — counting (diffracting) trees are not linearizable for
//! `c2 > 2·c1` — and the tightness sweep for Theorem 3.6.

use cnet_timing::{LinkTiming, Time, TimingSchedule};
use cnet_topology::constructions;

use crate::error::AdversaryError;
use crate::scenario::Scenario;

/// Builds the Theorem 4.1 attack on a counting tree of the given
/// width (`gap = 1`, the paper's `δ`). See [`tree_attack_with_gap`].
///
/// # Errors
///
/// As for [`tree_attack_with_gap`].
pub fn tree_attack(width: usize, timing: LinkTiming) -> Result<Scenario, AdversaryError> {
    tree_attack_with_gap(width, timing, 1)
}

/// Builds the Theorem 4.1 attack with an explicit gap between the fast
/// witness token's exit and the wave's entry:
///
/// * `T0` and `T1` enter the tree together at time 0. `T0` toggles the
///   root first and proceeds at the slowest pace (`c2` per link)
///   towards counter 0; `T1` proceeds at the fastest pace and returns
///   the value 1 at time `h·c1`.
/// * At time `h·c1 + gap` a wave of `2^h - 1` fast tokens enters. They
///   reach the leaves at `2·h·c1 + gap`, which is before the slow `T0`
///   arrives (at `h·c2`) as long as `gap < h·(c2 - 2·c1)`. By the step
///   property, *some* wave token then exits counter 0 with the value 0
///   — a non-linearizable operation, since `T1` (value 1) completely
///   precedes it.
///
/// The wave's entry trails `T1`'s *exit* by exactly `gap`, so sweeping
/// `gap` up to `h·(c2 - 2·c1) - 1` probes the finish–start separation
/// of Theorem 3.6 (`h·c2 - 2·h·c1`) and shows the bound is tight for
/// trees.
///
/// # Errors
///
/// * [`AdversaryError::RatioTooSmall`] unless `h·(c2 - 2·c1) >= 2`
///   (the discrete form of `c2 > 2·c1`).
/// * [`AdversaryError::GapTooLarge`] if `gap >= h·(c2 - 2·c1)`; beyond
///   that point Theorem 3.6 *guarantees* no violation.
/// * [`AdversaryError::Topology`] if `width` is not a power of two.
pub fn tree_attack_with_gap(
    width: usize,
    timing: LinkTiming,
    gap: Time,
) -> Result<Scenario, AdversaryError> {
    let topology = constructions::counting_tree(width)?;
    let h = topology.depth();
    let (c1, c2) = (timing.c1(), timing.c2());
    let slack = if c2 >= 2 * c1 {
        (h as Time) * (c2 - 2 * c1)
    } else {
        0
    };
    if slack < 2 {
        return Err(AdversaryError::RatioTooSmall {
            required: "h·(c2 - 2·c1) >= 2".into(),
            c1,
            c2,
        });
    }
    if gap == 0 || gap >= slack {
        return Err(AdversaryError::GapTooLarge {
            gap,
            max: slack - 1,
        });
    }

    let mut schedule = TimingSchedule::new(h);
    // T0 (token 0): toggles root first (tie broken by id), slow.
    schedule.push_delays(0, 0, &vec![c2; h])?;
    // T1 (token 1): fast; exits with value 1 at h·c1.
    schedule.push_delays(0, 0, &vec![c1; h])?;
    // The wave: 2^h - 1 fast tokens entering at h·c1 + gap.
    let wave_entry = (h as Time) * c1 + gap;
    for _ in 0..(width - 1) {
        schedule.push_delays(0, wave_entry, &vec![c1; h])?;
    }
    Ok(Scenario {
        name: "theorem-4.1-tree",
        topology,
        timing,
        schedule,
        min_violations: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_violates_for_ratio_above_two() {
        for width in [4usize, 8, 16, 32] {
            let timing = LinkTiming::new(10, 25).unwrap(); // ratio 2.5
            let s = tree_attack(width, timing).unwrap();
            s.validate().unwrap();
            let exec = s.execute().unwrap();
            assert!(
                exec.nonlinearizable_count() >= s.min_violations,
                "width {width}: {} violations",
                exec.nonlinearizable_count()
            );
            assert!(exec.output_counts().is_step());
        }
    }

    #[test]
    fn witness_is_value_zero_after_value_one() {
        let timing = LinkTiming::new(10, 30).unwrap();
        let exec = tree_attack(8, timing).unwrap().execute().unwrap();
        let v = exec.violations();
        assert!(!v.is_empty());
        // the canonical witness: T1's value-1 op precedes a value-0 op
        assert!(v
            .iter()
            .any(|(early, late)| early.value == 1 && late.value == 0));
    }

    #[test]
    fn barely_above_two_still_violates_on_deep_trees() {
        // c2 = 2 c1 + 1 has slack h >= 2 for h >= 2
        let timing = LinkTiming::new(10, 21).unwrap();
        let exec = tree_attack(8, timing).unwrap().execute().unwrap();
        assert!(exec.nonlinearizable_count() >= 1);
    }

    #[test]
    fn ratio_at_most_two_rejected() {
        let timing = LinkTiming::new(10, 20).unwrap();
        assert!(matches!(
            tree_attack(8, timing),
            Err(AdversaryError::RatioTooSmall { .. })
        ));
    }

    #[test]
    fn gap_sweep_tightness_of_theorem_3_6() {
        // h = 3, c1 = 10, c2 = 30 -> slack h(c2 - 2 c1) = 30
        let timing = LinkTiming::new(10, 30).unwrap();
        let slack = 3 * (30 - 2 * 10);
        // every gap below the slack still violates…
        for gap in [1, slack / 2, slack - 1] {
            let exec = tree_attack_with_gap(8, timing, gap)
                .unwrap()
                .execute()
                .unwrap();
            assert!(
                exec.nonlinearizable_count() >= 1,
                "gap {gap} should violate"
            );
        }
        // …and at the bound the constructor refuses (Theorem 3.6 territory)
        assert!(matches!(
            tree_attack_with_gap(8, timing, slack),
            Err(AdversaryError::GapTooLarge { .. })
        ));
    }

    #[test]
    fn bad_width_propagates() {
        let timing = LinkTiming::new(1, 10).unwrap();
        assert!(matches!(
            tree_attack(6, timing),
            Err(AdversaryError::Topology(_))
        ));
    }
}
