//! Automated attack search: exhaustively explore extremal schedules.
//!
//! The hand-built Section 4 scenarios pick each token's entry time and
//! pace adversarially. This module automates that choice: every token
//! independently gets an entry time from a small candidate set and an
//! extremal pace (every link at `c1`, or every link at `c2` — the
//! corners of the admissible delay polytope), and every combination is
//! executed. The search
//!
//! * rediscovers the paper's attacks (the Section 1 example falls out
//!   of a 3-token search on the width-2 network),
//! * and doubles as a bounded *verifier*: with `c2 <= 2·c1` it finds
//!   nothing, on any network — Corollary 3.9 checked over the whole
//!   extremal-schedule box.

use cnet_timing::executor::TimedExecutor;
use cnet_timing::{LinkTiming, Time, TimingSchedule};
use cnet_topology::Topology;

use crate::error::AdversaryError;

/// Parameters of a [`search_violations`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchConfig {
    /// Number of tokens (token `i` enters on input `i mod v`).
    pub tokens: usize,
    /// Candidate entry times each token chooses from.
    pub entry_candidates: Vec<Time>,
    /// Stop after this many assignments.
    pub budget: u64,
}

impl SearchConfig {
    /// A sensible default candidate set for a depth-`h` network:
    /// `{0, 1, h·c1 + 1, 2·h·c1 + 2}` — "at the start", "just behind",
    /// "right after a fast traversal", "after two".
    #[must_use]
    pub fn for_network(topology: &Topology, timing: LinkTiming, tokens: usize) -> Self {
        let h = topology.depth() as Time;
        SearchConfig {
            tokens,
            entry_candidates: vec![0, 1, h * timing.c1() + 1, 2 * h * timing.c1() + 2],
            budget: 5_000_000,
        }
    }
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Assignments executed.
    pub assignments: u64,
    /// Assignments whose execution contained at least one violation.
    pub violating: u64,
    /// A witness schedule for the first violating assignment found.
    pub witness: Option<TimingSchedule>,
    /// Whether the budget cut the search short.
    pub truncated: bool,
}

impl SearchOutcome {
    /// Whether any violating schedule exists in the searched box.
    #[must_use]
    pub fn found(&self) -> bool {
        self.witness.is_some()
    }
}

/// Exhaustively executes every extremal schedule in the box
/// `(entry ∈ candidates) × (pace ∈ {c1, c2})` per token and reports the
/// violating ones.
///
/// # Errors
///
/// Returns [`AdversaryError::Timing`] for an empty configuration.
pub fn search_violations(
    topology: &Topology,
    timing: LinkTiming,
    config: &SearchConfig,
) -> Result<SearchOutcome, AdversaryError> {
    if config.tokens == 0 || config.entry_candidates.is_empty() {
        return Err(AdversaryError::Timing(
            cnet_timing::TimingError::EmptySchedule,
        ));
    }
    let h = topology.depth();
    let v = topology.input_width();
    let executor = TimedExecutor::new(topology);
    let choices = (config.entry_candidates.len() * 2) as u64;

    let mut outcome = SearchOutcome {
        assignments: 0,
        violating: 0,
        witness: None,
        truncated: false,
    };
    // mixed-radix counter over per-token (entry, pace) choices
    let mut digits = vec![0u64; config.tokens];
    loop {
        if outcome.assignments >= config.budget {
            outcome.truncated = true;
            return Ok(outcome);
        }
        outcome.assignments += 1;

        let mut schedule = TimingSchedule::new(h);
        for (i, &d) in digits.iter().enumerate() {
            let entry = config.entry_candidates[(d / 2) as usize];
            let pace = if d % 2 == 0 { timing.c1() } else { timing.c2() };
            schedule
                .push_delays(i % v, entry, &vec![pace; h])
                .map_err(AdversaryError::Timing)?;
        }
        let exec = executor.run(&schedule).map_err(AdversaryError::Timing)?;
        if exec.nonlinearizable_count() > 0 {
            outcome.violating += 1;
            if outcome.witness.is_none() {
                outcome.witness = Some(schedule);
            }
        }

        // increment the mixed-radix counter
        let mut i = 0;
        loop {
            if i == digits.len() {
                return Ok(outcome);
            }
            digits[i] += 1;
            if digits[i] < choices {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::constructions;

    #[test]
    fn rediscovers_the_intro_example() {
        let net = constructions::single_balancer();
        let timing = LinkTiming::new(2, 8).unwrap();
        let config = SearchConfig::for_network(&net, timing, 3);
        let out = search_violations(&net, timing, &config).unwrap();
        assert!(out.found(), "the Section 1 example is in the box");
        assert!(!out.truncated);
        // the witness really violates
        let exec = TimedExecutor::new(&net).run(&out.witness.unwrap()).unwrap();
        assert!(exec.nonlinearizable_count() > 0);
    }

    #[test]
    fn rediscovers_a_tree_attack() {
        let net = constructions::counting_tree(4).unwrap();
        let timing = LinkTiming::new(10, 30).unwrap();
        let config = SearchConfig::for_network(&net, timing, 5);
        let out = search_violations(&net, timing, &config).unwrap();
        assert!(out.found(), "a 5-token tree attack exists at ratio 3");
    }

    /// Bounded verification of Corollary 3.9: with `c2 = 2 c1` the
    /// whole extremal box is violation-free.
    #[test]
    fn finds_nothing_in_the_guaranteed_regime() {
        let timing = LinkTiming::new(10, 20).unwrap();
        for net in [
            constructions::single_balancer(),
            constructions::counting_tree(4).unwrap(),
            constructions::bitonic(4).unwrap(),
        ] {
            let config = SearchConfig::for_network(&net, timing, 4);
            let out = search_violations(&net, timing, &config).unwrap();
            assert!(!out.found(), "Corollary 3.9 violated on {net:?}");
            assert_eq!(out.violating, 0);
        }
    }

    #[test]
    fn budget_truncates() {
        let net = constructions::single_balancer();
        let timing = LinkTiming::new(2, 8).unwrap();
        let mut config = SearchConfig::for_network(&net, timing, 3);
        config.budget = 7;
        let out = search_violations(&net, timing, &config).unwrap();
        assert!(out.truncated);
        assert_eq!(out.assignments, 7);
    }

    #[test]
    fn empty_configs_rejected() {
        let net = constructions::single_balancer();
        let timing = LinkTiming::new(1, 3).unwrap();
        let bad = SearchConfig {
            tokens: 0,
            entry_candidates: vec![0],
            budget: 10,
        };
        assert!(search_violations(&net, timing, &bad).is_err());
        let bad = SearchConfig {
            tokens: 2,
            entry_candidates: vec![],
            budget: 10,
        };
        assert!(search_violations(&net, timing, &bad).is_err());
    }
}
