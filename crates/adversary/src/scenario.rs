//! A packaged adversarial scenario: network, timing, and schedule.

use cnet_timing::executor::TimedExecutor;
use cnet_timing::{Execution, LinkTiming, TimingError, TimingSchedule};
use cnet_topology::Topology;

/// A complete adversarial construction ready to execute.
///
/// The schedule is always admissible for the scenario's [`LinkTiming`]
/// (every link delay lies in `[c1, c2]`); executing it yields at least
/// [`Scenario::min_violations`] non-linearizable operations.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short name for reports ("theorem-4.1" etc.).
    pub name: &'static str,
    /// The attacked network.
    pub topology: Topology,
    /// The link-timing bounds the schedule honours.
    pub timing: LinkTiming,
    /// The adversarial schedule itself.
    pub schedule: TimingSchedule,
    /// A lower bound on the number of non-linearizable operations the
    /// execution will contain.
    pub min_violations: usize,
}

impl Scenario {
    /// Runs the scenario's schedule on its network.
    ///
    /// # Errors
    ///
    /// Propagates executor errors; none occur for scenarios built by
    /// this crate.
    pub fn execute(&self) -> Result<Execution, TimingError> {
        TimedExecutor::new(&self.topology).run(&self.schedule)
    }

    /// Validates that the schedule respects the scenario's own timing
    /// bounds — every adversarial delay lies within `[c1, c2]`.
    ///
    /// # Errors
    ///
    /// Returns the first inadmissible delay; none exist for scenarios
    /// built by this crate.
    pub fn validate(&self) -> Result<(), TimingError> {
        self.schedule.validate(&self.topology, Some(self.timing))
    }
}
