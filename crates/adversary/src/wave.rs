//! Theorem 4.4 — bitonic networks suffer *mass* violations once
//! `c2 > ((3 + log w)/2)·c1`.

use cnet_timing::{LinkTiming, TimingSchedule};
use cnet_topology::constructions;

use crate::error::AdversaryError;
use crate::scenario::Scenario;

/// Builds the three-wave attack of Theorem 4.4 on `Bitonic[width]`.
///
/// `Bitonic[w]` consists of a first stage of two parallel
/// `Bitonic[w/2]` networks (depth `h1 = h - log w`) followed by a
/// merging stage of depth `h2 = log w`:
///
/// * **Wave 1** (`w/2` tokens on inputs `x_0..x_{w/2-1}`) enters at
///   time 0, crosses the first stage in lock step at pace `c1`, then
///   *slows to `c2`* inside the merging stage. It reaches the counters
///   at `h1·c1 + h2·c2`.
/// * **Wave 2** (same inputs) enters one cycle behind, crosses the
///   whole network at pace `c1`, and exits at `1 + h·c1`.
/// * **Wave 3** (same inputs) enters one cycle after wave 2 exits and
///   also runs at pace `c1`, exiting at `2 + 2·h·c1`.
///
/// When `h2·c2 > (h + h2)·c1 + 2` — the discrete form of the theorem's
/// `c2 > ((3 + log w)/2)·c1` — wave 3 overtakes the crawling wave 1
/// inside the merger and returns values *lower* than wave 2's, even
/// though every wave-3 token entered after every wave-2 token exited:
/// an entire wave of non-linearizable operations.
///
/// # Errors
///
/// * [`AdversaryError::RatioTooSmall`] unless
///   `h2·c2 >= (h + h2)·c1 + 3`.
/// * [`AdversaryError::Topology`] if `width` is not a power of two
///   `>= 4`.
pub fn wave_attack(width: usize, timing: LinkTiming) -> Result<Scenario, AdversaryError> {
    if width < 4 {
        return Err(AdversaryError::Topology(
            cnet_topology::TopologyError::WidthNotPowerOfTwo { width },
        ));
    }
    let topology = constructions::bitonic(width)?;
    let h = topology.depth();
    let h2 = width.trailing_zeros() as usize; // merger depth = log w
    let h1 = h - h2;
    let (c1, c2) = (timing.c1(), timing.c2());

    // wave 3 must reach the counters before wave 1 does:
    //   2 + 2 h c1 < h1 c1 + h2 c2  <=>  h2 c2 > (h + h2) c1 + 2
    if (h2 as u64) * c2 < (h as u64 + h2 as u64) * c1 + 3 {
        return Err(AdversaryError::RatioTooSmall {
            required: "h2·c2 >= (h + h2)·c1 + 3, i.e. c2 > ((3 + log w)/2)·c1".into(),
            c1,
            c2,
        });
    }

    let half = width / 2;
    let mut schedule = TimingSchedule::new(h);
    // wave 1: c1 through the first stage, c2 through the merger
    let mut slow = vec![c1; h1];
    slow.resize(h, c2);
    for input in 0..half {
        schedule.push_delays(input, 0, &slow)?;
    }
    // wave 2: fully fast, one cycle behind
    for input in 0..half {
        schedule.push_delays(input, 1, &vec![c1; h])?;
    }
    // wave 3: fully fast, entering one cycle after wave 2 exits
    let wave3_entry = 2 + (h as u64) * c1;
    for input in 0..half {
        schedule.push_delays(input, wave3_entry, &vec![c1; h])?;
    }
    Ok(Scenario {
        name: "theorem-4.4-wave",
        topology,
        timing,
        schedule,
        // every wave-3 token is preceded by higher-valued wave-2 tokens;
        // demand at least half of them are flagged to witness the *mass*
        // violation.
        min_violations: half / 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_violation_above_threshold() {
        // width 8: log w = 3, threshold ratio = 3.0
        let timing = LinkTiming::new(10, 35).unwrap();
        let s = wave_attack(8, timing).unwrap();
        s.validate().unwrap();
        let exec = s.execute().unwrap();
        assert!(
            exec.nonlinearizable_count() >= s.min_violations,
            "got {} violations, wanted >= {}",
            exec.nonlinearizable_count(),
            s.min_violations
        );
        assert!(exec.output_counts().is_step());
    }

    #[test]
    fn whole_third_wave_is_nonlinearizable_when_fully_overtaken() {
        let timing = LinkTiming::new(10, 60).unwrap(); // far above threshold
        let s = wave_attack(8, timing).unwrap();
        let exec = s.execute().unwrap();
        // wave 3 tokens are ids 8..12; all should be flagged
        let bad = cnet_timing::linearizability::nonlinearizable_tokens(exec.operations());
        for t in 8..12 {
            assert!(
                bad.contains(&t),
                "wave-3 token {t} should be non-linearizable"
            );
        }
    }

    #[test]
    fn violation_fraction_is_large() {
        let timing = LinkTiming::new(10, 60).unwrap();
        let exec = wave_attack(16, timing).unwrap().execute().unwrap();
        // 8 of 24 operations ≈ one third of the whole execution
        assert!(exec.nonlinearizable_ratio() >= 8.0 / 24.0 - 1e-9);
    }

    #[test]
    fn below_threshold_rejected() {
        // width 8: threshold 3.0; ratio 2.5 is below it
        let timing = LinkTiming::new(10, 25).unwrap();
        assert!(matches!(
            wave_attack(8, timing),
            Err(AdversaryError::RatioTooSmall { .. })
        ));
    }

    #[test]
    fn larger_widths_need_larger_ratios() {
        // width 32: threshold (3 + 5)/2 = 4.0
        let ok = LinkTiming::new(10, 45).unwrap();
        assert!(wave_attack(32, ok).is_ok());
        let not_enough = LinkTiming::new(10, 35).unwrap();
        assert!(wave_attack(32, not_enough).is_err());
    }
}
