use std::error::Error;
use std::fmt;

use cnet_timing::Time;

/// Errors raised while constructing an adversarial scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdversaryError {
    /// The requested `c2/c1` ratio is too small for the attack to
    /// produce a violation (discrete time needs a little slack over the
    /// paper's strict inequality).
    RatioTooSmall {
        /// A human-readable form of the required condition.
        required: String,
        /// The provided `c1`.
        c1: Time,
        /// The provided `c2`.
        c2: Time,
    },
    /// The requested gap exceeds the largest gap for which the attack
    /// still violates.
    GapTooLarge {
        /// The requested gap.
        gap: Time,
        /// The largest violating gap for these parameters.
        max: Time,
    },
    /// An underlying network construction failed (bad width).
    Topology(cnet_topology::TopologyError),
    /// An underlying schedule operation failed.
    Timing(cnet_timing::TimingError),
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::RatioTooSmall { required, c1, c2 } => {
                write!(
                    f,
                    "timing c1={c1}, c2={c2} too tame for this attack; need {required}"
                )
            }
            AdversaryError::GapTooLarge { gap, max } => {
                write!(f, "gap {gap} exceeds the largest violating gap {max}")
            }
            AdversaryError::Topology(e) => write!(f, "topology: {e}"),
            AdversaryError::Timing(e) => write!(f, "timing: {e}"),
        }
    }
}

impl Error for AdversaryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdversaryError::Topology(e) => Some(e),
            AdversaryError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnet_topology::TopologyError> for AdversaryError {
    fn from(e: cnet_topology::TopologyError) -> Self {
        AdversaryError::Topology(e)
    }
}

impl From<cnet_timing::TimingError> for AdversaryError {
    fn from(e: cnet_timing::TimingError) -> Self {
        AdversaryError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AdversaryError::RatioTooSmall {
            required: "c2 > 2 c1 + 2".into(),
            c1: 5,
            c2: 10,
        };
        assert!(e.to_string().contains("c2 > 2 c1 + 2"));
        assert!(e.source().is_none());

        let e: AdversaryError =
            cnet_topology::TopologyError::WidthNotPowerOfTwo { width: 3 }.into();
        assert!(e.source().is_some());
    }
}
