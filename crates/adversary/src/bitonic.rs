//! Theorem 4.3 — bitonic counting networks are not linearizable for
//! `c2 > 2·c1`.

use cnet_timing::{LinkTiming, TimingSchedule};
use cnet_topology::constructions;

use crate::error::AdversaryError;
use crate::scenario::Scenario;

/// Builds the Theorem 4.3 attack on `Bitonic[width]` using the token
/// placement of Lemma 4.2:
///
/// * `T0` enters on `x_0` at time 0 and traverses the network alone at
///   the fastest pace, exiting on `y_0` with value 0 at `h·c1`.
/// * `T1` enters on `x_0` just after `T0` exits and proceeds at the
///   slowest pace (`c2` per link). By Lemma 4.2 it is headed for `y_1`.
/// * `T2` enters on `x_0` one cycle behind `T1` and proceeds at the
///   fastest pace, exiting on `y_2` with value 2. Lemma 4.2 guarantees
///   `T1` and `T2` share only their entry balancer, so the fast `T2`
///   does not perturb `T1`'s route.
/// * As soon as `T2` exits, `width` fast tokens enter, one per input.
///   They reach the counters before the slow `T1`; by the step
///   property one of them exits on `y_1` and returns the value 1 —
///   non-linearizable, since `T2` (value 2) completely precedes it.
///
/// # Errors
///
/// * [`AdversaryError::RatioTooSmall`] unless `h·(c2 - 2·c1) >= 3`
///   (the discrete form of `c2 > 2·c1`, with room for the two 1-cycle
///   entry offsets).
/// * [`AdversaryError::Topology`] if `width` is not a power of two
///   `>= 4` (the paper handles `w = 2` via the Section 1 example).
pub fn bitonic_attack(width: usize, timing: LinkTiming) -> Result<Scenario, AdversaryError> {
    if width < 4 {
        return Err(AdversaryError::Topology(
            cnet_topology::TopologyError::WidthNotPowerOfTwo { width },
        ));
    }
    let topology = constructions::bitonic(width)?;
    let h = topology.depth();
    let (c1, c2) = (timing.c1(), timing.c2());
    let slack = if c2 >= 2 * c1 {
        (h as u64) * (c2 - 2 * c1)
    } else {
        0
    };
    if slack < 3 {
        return Err(AdversaryError::RatioTooSmall {
            required: "h·(c2 - 2·c1) >= 3".into(),
            c1,
            c2,
        });
    }

    let hc1 = (h as u64) * c1;
    let mut schedule = TimingSchedule::new(h);
    // T0: alone, fast; exits y0 with value 0 at h·c1.
    schedule.push_delays(0, 0, &vec![c1; h])?;
    // T1: slow; enters after T0 has fully exited.
    let t1_entry = hc1 + 1;
    schedule.push_delays(0, t1_entry, &vec![c2; h])?;
    // T2: fast, one cycle behind T1; exits y2 at t1 + 1 + h·c1.
    schedule.push_delays(0, t1_entry + 1, &vec![c1; h])?;
    // The w-token wave, entering right after T2 exits, one per input.
    let wave_entry = t1_entry + 2 + hc1;
    for input in 0..width {
        schedule.push_delays(input, wave_entry, &vec![c1; h])?;
    }
    Ok(Scenario {
        name: "theorem-4.3-bitonic",
        topology,
        timing,
        schedule,
        min_violations: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_violates_for_ratio_above_two() {
        for width in [4usize, 8, 16] {
            let timing = LinkTiming::new(10, 25).unwrap();
            let s = bitonic_attack(width, timing).unwrap();
            s.validate().unwrap();
            let exec = s.execute().unwrap();
            assert!(
                exec.nonlinearizable_count() >= 1,
                "width {width}: {} violations",
                exec.nonlinearizable_count()
            );
            assert!(exec.output_counts().is_step());
        }
    }

    #[test]
    fn quiescent_counts_match_the_proof() {
        // w + 3 tokens: y0, y1, y2 get two each; the rest one each.
        let timing = LinkTiming::new(10, 25).unwrap();
        let exec = bitonic_attack(8, timing).unwrap().execute().unwrap();
        let counts = exec.output_counts();
        assert_eq!(counts.total(), 8 + 3);
        assert_eq!(&counts.as_slice()[..4], &[2, 2, 2, 1]);
    }

    #[test]
    fn t0_t1_t2_take_their_lemma_4_2_exits() {
        let timing = LinkTiming::new(10, 25).unwrap();
        let exec = bitonic_attack(8, timing).unwrap().execute().unwrap();
        let ops = exec.operations();
        assert_eq!(ops[0].counter, 0, "T0 exits y0");
        assert_eq!(ops[0].value, 0);
        assert_eq!(ops[1].counter, 1, "T1 exits y1");
        assert_eq!(ops[2].counter, 2, "T2 exits y2");
        assert_eq!(ops[2].value, 2);
    }

    #[test]
    fn witness_precedes_with_higher_value() {
        let timing = LinkTiming::new(5, 14).unwrap(); // slack = h*4
        let exec = bitonic_attack(4, timing).unwrap().execute().unwrap();
        let v = exec.violations();
        assert!(
            v.iter()
                .any(|(early, late)| early.token == 2 && late.value == 1),
            "T2 (value 2) should precede the wave token that returns 1: {v:?}"
        );
    }

    #[test]
    fn tame_timing_rejected() {
        let timing = LinkTiming::new(10, 20).unwrap();
        assert!(matches!(
            bitonic_attack(8, timing),
            Err(AdversaryError::RatioTooSmall { .. })
        ));
    }

    #[test]
    fn width_two_redirects_to_intro() {
        let timing = LinkTiming::new(1, 100).unwrap();
        assert!(matches!(
            bitonic_attack(2, timing),
            Err(AdversaryError::Topology(_))
        ));
    }
}
