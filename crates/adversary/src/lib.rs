//! Deterministic worst-case schedules exhibiting the paper's
//! non-linearizable executions (Sections 1 and 4).
//!
//! Each function in this crate builds a complete [`Scenario`]: a
//! network, an admissible [`cnet_timing::LinkTiming`], and a concrete
//! [`cnet_timing::TimingSchedule`] whose execution is guaranteed to
//! contain non-linearizable operations (Definition 2.4). The scenarios
//! are:
//!
//! * [`intro_example`] — the Section 1 example on the width-2 network:
//!   a delayed token lets a later token return a smaller value.
//! * [`tree_attack`] — Theorem 4.1: counting (diffracting) trees are
//!   not linearizable once `c2 > 2·c1`: a slow token and a wave of
//!   `2^h - 1` fast tokens produce a violation.
//! * [`tree_attack_with_gap`] — the same attack with a configurable gap
//!   between the fast witness token's exit and the wave's entry; the
//!   largest violating gap approaches Theorem 3.6's separation
//!   `h·c2 - 2·h·c1`, demonstrating that the bound is tight.
//! * [`bitonic_attack`] — Theorem 4.3: bitonic networks are not
//!   linearizable once `c2 > 2·c1`, via the Lemma 4.2 token placement.
//! * [`wave_attack`] — Theorem 4.4: once
//!   `c2 > ((3 + log w)/2)·c1`, a three-wave schedule makes an entire
//!   wave of operations non-linearizable.
//! * [`search_violations`] — automated attack search over the extremal
//!   schedule box; rediscovers the attacks above and doubles as a
//!   bounded verifier of Corollary 3.9.
//!
//! # Example
//!
//! ```
//! use cnet_adversary::tree_attack;
//! use cnet_timing::LinkTiming;
//!
//! // ratio 3 > 2: violations are possible on a tree of width 8
//! let timing = LinkTiming::new(10, 30)?;
//! let scenario = tree_attack(8, timing)?;
//! let exec = scenario.execute()?;
//! assert!(exec.nonlinearizable_count() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod scenario;

pub mod bitonic;
pub mod intro;
pub mod search;
pub mod tree;
pub mod wave;

pub use bitonic::bitonic_attack;
pub use error::AdversaryError;
pub use intro::intro_example;
pub use scenario::Scenario;
pub use search::{search_violations, SearchConfig, SearchOutcome};
pub use tree::{tree_attack, tree_attack_with_gap};
pub use wave::wave_attack;
