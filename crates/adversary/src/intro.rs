//! The paper's Section 1 example: even a depth-1 network is not
//! linearizable once `c2` is large enough relative to `c1`.

use cnet_timing::{LinkTiming, TimingSchedule};
use cnet_topology::constructions;

use crate::error::AdversaryError;
use crate::scenario::Scenario;

/// Builds the introductory scenario on the width-2 network (one
/// balancer `B`, counters `A_0`, `A_1`):
///
/// * `T0` enters at time 0, toggles to `y_0`, and is delayed on the
///   wire to `A_0` (`c2`).
/// * `T1` enters at time 1, toggles to `y_1`, traverses fast (`c1`) and
///   returns 1.
/// * `T2` enters after `T1` has exited, toggles to `y_0`, traverses
///   fast and reaches `A_0` *before* the delayed `T0`, returning 0.
///
/// `T1` completely precedes `T2` yet returns the higher value — `T2`'s
/// operation is non-linearizable. `T0` finally returns 2.
///
/// # Errors
///
/// Returns [`AdversaryError::RatioTooSmall`] unless `c2 > 2·c1 + 2`
/// (the discrete-time version of the paper's `c2 > 2·c1` with room for
/// the two 1-cycle entry offsets).
pub fn intro_example(timing: LinkTiming) -> Result<Scenario, AdversaryError> {
    let (c1, c2) = (timing.c1(), timing.c2());
    if c2 <= 2 * c1 + 2 {
        return Err(AdversaryError::RatioTooSmall {
            required: "c2 > 2·c1 + 2".into(),
            c1,
            c2,
        });
    }
    let topology = constructions::single_balancer();
    let mut schedule = TimingSchedule::new(topology.depth());
    schedule.push_delays(0, 0, &[c2])?; // T0: slow
    schedule.push_delays(0, 1, &[c1])?; // T1: fast, exits at 1 + c1
    schedule.push_delays(0, 2 + c1, &[c1])?; // T2: enters after T1 exits
    Ok(Scenario {
        name: "section-1-example",
        topology,
        timing,
        schedule,
        min_violations: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_values() {
        let timing = LinkTiming::new(2, 8).unwrap();
        let s = intro_example(timing).unwrap();
        s.validate().unwrap();
        let exec = s.execute().unwrap();
        let ops = exec.operations();
        assert_eq!(ops[0].value, 2, "T0 returns 2");
        assert_eq!(ops[1].value, 1, "T1 returns 1");
        assert_eq!(ops[2].value, 0, "T2 returns 0");
        assert_eq!(exec.nonlinearizable_count(), 1);
    }

    #[test]
    fn violation_pair_is_t1_t2() {
        let timing = LinkTiming::new(3, 20).unwrap();
        let exec = intro_example(timing).unwrap().execute().unwrap();
        let v = exec.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.token, 1);
        assert_eq!(v[0].1.token, 2);
    }

    #[test]
    fn tame_timing_rejected() {
        let timing = LinkTiming::new(5, 10).unwrap();
        assert!(matches!(
            intro_example(timing),
            Err(AdversaryError::RatioTooSmall { .. })
        ));
        // boundary: c2 = 2 c1 + 2 still rejected
        let timing = LinkTiming::new(5, 12).unwrap();
        assert!(intro_example(timing).is_err());
        // first admissible point
        let timing = LinkTiming::new(5, 13).unwrap();
        assert_eq!(
            intro_example(timing)
                .unwrap()
                .execute()
                .unwrap()
                .nonlinearizable_count(),
            1
        );
    }
}
