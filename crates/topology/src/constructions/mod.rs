//! Constructions of the counting networks studied in the paper.
//!
//! * [`bitonic`] / [`merger`] — Aspnes–Herlihy–Shavit bitonic counting
//!   network `Bitonic[w]` of depth `log w (log w + 1) / 2` and its
//!   merging network `Merger[w]` of depth `log w`.
//! * [`periodic`] / [`block`] — the AHS periodic counting network of
//!   depth `(log w)^2` built from `log w` copies of `Block[w]`.
//! * [`counting_tree`] — the counting-tree shape underlying diffracting
//!   trees (Shavit–Zemach): a binary tree of 1-in/2-out balancers of
//!   depth `log w`.
//! * [`single_balancer`] — the width-2 network of the paper's
//!   introductory example.
//! * [`pad_inputs`] / [`linearizing_prefix`] — Corollary 3.12: prefix
//!   every input with a path of 1-in/1-out balancers so that the padded
//!   network is linearizable whenever `c2 < k·c1`.
//!
//! All constructions produce validated, uniform [`Topology`] values.

mod comparator;
mod compose;
mod prefix;
mod tree;

pub use compose::compose;
pub use prefix::{linearizing_prefix, pad_inputs};
pub use tree::{counting_tree, counting_tree_d};

use crate::error::TopologyError;
use crate::topology::{Topology, TopologyBuilder};

use comparator::{Layer, LayerList, Wire};

/// The width-2 counting network of the paper's introduction: a single
/// 2-in/2-out balancer feeding two counters.
///
/// # Example
///
/// ```
/// let net = cnet_topology::constructions::single_balancer();
/// assert_eq!(net.depth(), 1);
/// ```
#[must_use]
pub fn single_balancer() -> Topology {
    let mut b = TopologyBuilder::new();
    let n = b.add_node(2, 2);
    b.add_input(n, 0).expect("fresh node");
    b.add_input(n, 1).expect("fresh node");
    b.connect_counter(n, 0, 0).expect("fresh node");
    b.connect_counter(n, 1, 1).expect("fresh node");
    b.finalize()
        .expect("single balancer is a valid uniform network")
}

/// Checks a width argument is a power of two at least 2.
fn check_width(width: usize) -> Result<(), TopologyError> {
    if width < 2 || !width.is_power_of_two() {
        return Err(TopologyError::WidthNotPowerOfTwo { width });
    }
    Ok(())
}

/// Builds `Bitonic[width]`, the bitonic counting network of Aspnes,
/// Herlihy, and Shavit.
///
/// `Bitonic[w]` has `w` inputs, `w` outputs, and depth
/// `log w (log w + 1) / 2`.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] unless `width` is a
/// power of two `>= 2`.
///
/// # Example
///
/// ```
/// let net = cnet_topology::constructions::bitonic(16)?;
/// assert_eq!(net.depth(), 10);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
pub fn bitonic(width: usize) -> Result<Topology, TopologyError> {
    check_width(width)?;
    let wires: Vec<Wire> = (0..width).collect();
    let mut layers = LayerList::new();
    let outs = bitonic_rec(&wires, &mut layers);
    comparator::realize(width, &layers, &outs)
}

/// Recursively appends the layers of `Bitonic[len(ins)]` operating on
/// the given wires, returning the ordered output wires.
fn bitonic_rec(ins: &[Wire], layers: &mut LayerList) -> Vec<Wire> {
    let w = ins.len();
    if w == 1 {
        return ins.to_vec();
    }
    let (lo, hi) = ins.split_at(w / 2);
    let mut upper = LayerList::new();
    let mut lower = LayerList::new();
    let a = bitonic_rec(lo, &mut upper);
    let b = bitonic_rec(hi, &mut lower);
    layers.extend_parallel(upper, lower);
    let merged_in: Vec<Wire> = a.into_iter().chain(b).collect();
    merger_rec(&merged_in, layers)
}

/// Builds the merging network `Merger[width]` as a standalone topology.
///
/// `Merger[w]` has depth `log w`; it merges two step sequences (its
/// first and second `w/2` inputs) into one. As a balancing network it
/// is not by itself a counting network, but it is uniform and useful
/// for testing the bitonic recursion.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] unless `width` is a
/// power of two `>= 2`.
pub fn merger(width: usize) -> Result<Topology, TopologyError> {
    check_width(width)?;
    let wires: Vec<Wire> = (0..width).collect();
    let mut layers = LayerList::new();
    let outs = merger_rec(&wires, &mut layers);
    comparator::realize(width, &layers, &outs)
}

/// Recursively appends the layers of `Merger[len(ins)]`, returning the
/// ordered output wires.
///
/// For `w > 2` the construction follows the paper's Figure 4 / the AHS
/// recursion: `Merger_1[w/2]` merges the even-indexed wires of the
/// first half with the odd-indexed wires of the second half,
/// `Merger_2[w/2]` the remaining wires; a final row of `w/2` balancers
/// combines output `i` of each sub-merger into outputs `2i`, `2i + 1`.
fn merger_rec(ins: &[Wire], layers: &mut LayerList) -> Vec<Wire> {
    let w = ins.len();
    debug_assert!(w >= 2 && w.is_power_of_two());
    if w == 2 {
        layers.push_single(ins[0], ins[1]);
        return vec![ins[0], ins[1]];
    }
    let (x, xp) = ins.split_at(w / 2);
    let m1_in: Vec<Wire> = even(x).chain(odd(xp)).collect();
    let m2_in: Vec<Wire> = odd(x).chain(even(xp)).collect();
    let mut l1 = LayerList::new();
    let mut l2 = LayerList::new();
    let z = merger_rec(&m1_in, &mut l1);
    let zp = merger_rec(&m2_in, &mut l2);
    layers.extend_parallel(l1, l2);
    let mut final_layer = Vec::with_capacity(w / 2);
    let mut outs = Vec::with_capacity(w);
    for i in 0..w / 2 {
        final_layer.push((z[i], zp[i]));
        outs.push(z[i]);
        outs.push(zp[i]);
    }
    layers.push(final_layer);
    outs
}

/// Builds the periodic counting network of Aspnes, Herlihy, and Shavit:
/// `log width` consecutive copies of [`block`], total depth
/// `(log width)^2`.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] unless `width` is a
/// power of two `>= 2`.
///
/// # Example
///
/// ```
/// let net = cnet_topology::constructions::periodic(8)?;
/// assert_eq!(net.depth(), 9);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
pub fn periodic(width: usize) -> Result<Topology, TopologyError> {
    check_width(width)?;
    let mut wires: Vec<Wire> = (0..width).collect();
    let mut layers = LayerList::new();
    let rounds = width.trailing_zeros();
    for _ in 0..rounds {
        wires = block_rec(&wires, &mut layers);
    }
    comparator::realize(width, &layers, &wires)
}

/// Builds a single `Block[width]` network (depth `log width`) as a
/// standalone topology. One block is *not* a counting network; the
/// periodic network chains `log width` of them.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] unless `width` is a
/// power of two `>= 2`.
pub fn block(width: usize) -> Result<Topology, TopologyError> {
    check_width(width)?;
    let wires: Vec<Wire> = (0..width).collect();
    let mut layers = LayerList::new();
    let outs = block_rec(&wires, &mut layers);
    comparator::realize(width, &layers, &outs)
}

/// Recursively appends the layers of `Block[len(ins)]` — the *balanced*
/// block of Dowd, Perl, Rudolph, and Saks that the AHS periodic network
/// is built from: a reflection layer pairing wire `i` with wire
/// `w - 1 - i`, followed by two parallel `Block[w/2]` networks on the
/// two halves.
fn block_rec(ins: &[Wire], layers: &mut LayerList) -> Vec<Wire> {
    let w = ins.len();
    debug_assert!(w >= 2 && w.is_power_of_two());
    if w == 2 {
        layers.push_single(ins[0], ins[1]);
        return vec![ins[0], ins[1]];
    }
    let reflection: Layer = (0..w / 2).map(|i| (ins[i], ins[w - 1 - i])).collect();
    layers.push(reflection);
    let mut la = LayerList::new();
    let mut lb = LayerList::new();
    let a = block_rec(&ins[..w / 2], &mut la);
    let b = block_rec(&ins[w / 2..], &mut lb);
    layers.extend_parallel(la, lb);
    a.into_iter().chain(b).collect()
}

fn even(xs: &[Wire]) -> impl Iterator<Item = Wire> + '_ {
    xs.iter().step_by(2).copied()
}

fn odd(xs: &[Wire]) -> impl Iterator<Item = Wire> + '_ {
    xs.iter().skip(1).step_by(2).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::SequentialRouter;
    use proptest::prelude::*;

    fn expected_bitonic_depth(w: usize) -> usize {
        let lg = w.trailing_zeros() as usize;
        lg * (lg + 1) / 2
    }

    #[test]
    fn bitonic_shapes() {
        for w in [2usize, 4, 8, 16, 32] {
            let net = bitonic(w).unwrap();
            assert_eq!(net.input_width(), w, "width {w}");
            assert_eq!(net.output_width(), w, "width {w}");
            assert_eq!(net.depth(), expected_bitonic_depth(w), "width {w}");
            // Bitonic[w] has w/2 balancers per layer
            for l in 1..=net.depth() {
                assert_eq!(net.layer(l).len(), w / 2, "width {w} layer {l}");
            }
        }
    }

    #[test]
    fn merger_shapes() {
        for w in [2usize, 4, 8, 16] {
            let net = merger(w).unwrap();
            assert_eq!(net.depth(), w.trailing_zeros() as usize, "width {w}");
            assert_eq!(net.input_width(), w);
            assert_eq!(net.output_width(), w);
        }
    }

    #[test]
    fn periodic_shapes() {
        for w in [2usize, 4, 8, 16] {
            let net = periodic(w).unwrap();
            let lg = w.trailing_zeros() as usize;
            assert_eq!(net.depth(), lg * lg, "width {w}");
        }
    }

    #[test]
    fn block_shape() {
        let net = block(8).unwrap();
        assert_eq!(net.depth(), 3);
    }

    #[test]
    fn invalid_widths_rejected() {
        for w in [0usize, 1, 3, 6, 12] {
            assert!(matches!(
                bitonic(w),
                Err(TopologyError::WidthNotPowerOfTwo { .. })
            ));
            assert!(matches!(
                periodic(w),
                Err(TopologyError::WidthNotPowerOfTwo { .. })
            ));
        }
    }

    /// The defining property: in any quiescent state (here: after
    /// routing any token mix sequentially) the output counts form a
    /// step.
    #[test]
    fn bitonic_step_property_uneven_inputs() {
        let net = bitonic(8).unwrap();
        let mut r = SequentialRouter::new(&net);
        // all tokens on input 0
        for _ in 0..13 {
            r.route(0).unwrap();
        }
        assert!(r.output_counts().is_step(), "{}", r.output_counts());
        // then a burst on input 5
        for _ in 0..29 {
            r.route(5).unwrap();
        }
        assert!(r.output_counts().is_step(), "{}", r.output_counts());
    }

    #[test]
    fn periodic_step_property_uneven_inputs() {
        let net = periodic(8).unwrap();
        let mut r = SequentialRouter::new(&net);
        for i in 0..37 {
            r.route((i * 3) % 8).unwrap();
        }
        assert!(r.output_counts().is_step(), "{}", r.output_counts());
    }

    /// Lemma 4.2(b): after a solo token through input x0 exits on y0,
    /// the next two tokens through x0 exit on y1 and y2 (mod w).
    #[test]
    fn bitonic_lemma_4_2_exit_pattern() {
        for w in [2usize, 4, 8, 16, 32] {
            let net = bitonic(w).unwrap();
            let mut r = SequentialRouter::new(&net);
            let t0 = r.route(0).unwrap();
            let t1 = r.route(0).unwrap();
            let t2 = r.route(0).unwrap();
            assert_eq!(t0.counter, 0, "width {w}");
            assert_eq!(t1.counter, 1 % w, "width {w}");
            assert_eq!(t2.counter, 2 % w, "width {w}");
        }
    }

    /// Lemma 4.2(a): T1 and T2 (the two tokens after the solo token)
    /// share only their entry balancer.
    #[test]
    fn bitonic_lemma_4_2_disjoint_paths() {
        for w in [4usize, 8, 16, 32] {
            let net = bitonic(w).unwrap();
            let mut r = SequentialRouter::new(&net);
            let _t0 = r.route(0).unwrap();
            let t1 = r.route(0).unwrap();
            let t2 = r.route(0).unwrap();
            let shared: Vec<_> = t1
                .hops
                .iter()
                .filter(|(n, _)| t2.hops.iter().any(|(m, _)| m == n))
                .collect();
            assert_eq!(
                shared.len(),
                1,
                "width {w}: share exactly the entry balancer"
            );
            assert_eq!(shared[0].0, net.input(0).node, "width {w}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Quiescent step property for bitonic networks over random
        /// token placements.
        #[test]
        fn bitonic_counts_any_distribution(
            width_exp in 1usize..5,
            tokens in proptest::collection::vec(0usize..32, 0..200),
        ) {
            let w = 1 << width_exp;
            let net = bitonic(w).unwrap();
            let mut r = SequentialRouter::new(&net);
            for t in &tokens {
                r.route(t % w).unwrap();
            }
            prop_assert!(r.output_counts().is_step());
            prop_assert_eq!(r.output_counts().total(), tokens.len() as u64);
        }

        /// Same for the periodic network.
        #[test]
        fn periodic_counts_any_distribution(
            width_exp in 1usize..4,
            tokens in proptest::collection::vec(0usize..32, 0..150),
        ) {
            let w = 1 << width_exp;
            let net = periodic(w).unwrap();
            let mut r = SequentialRouter::new(&net);
            for t in &tokens {
                r.route(t % w).unwrap();
            }
            prop_assert!(r.output_counts().is_step());
        }

        /// Sequential tokens through any counting network return the
        /// consecutive values 0, 1, 2, ... regardless of entry inputs.
        #[test]
        fn sequential_routing_counts_consecutively(
            width_exp in 1usize..5,
            tokens in proptest::collection::vec(0usize..32, 1..100),
        ) {
            let w = 1 << width_exp;
            let net = bitonic(w).unwrap();
            let mut r = SequentialRouter::new(&net);
            for (i, t) in tokens.iter().enumerate() {
                let v = r.route(t % w).unwrap().value;
                prop_assert_eq!(v, i as u64);
            }
        }
    }
}

/// A degenerate "network" with a single line of `depth` unary
/// balancers feeding one counter — the model of a *centralized*
/// counter (every token serializes through the same nodes).
///
/// Useful as the baseline the paper's introduction contrasts counting
/// networks against: it is trivially linearizable (one counter, FIFO
/// arrival order) but a sequential bottleneck.
///
/// # Panics
///
/// Panics if `depth` is zero.
#[must_use]
pub fn serial_line(depth: usize) -> Topology {
    assert!(depth > 0, "a network needs at least one layer");
    let mut b = TopologyBuilder::new();
    let head = b.add_node(1, 1);
    let mut tail = head;
    for _ in 1..depth {
        let next = b.add_node(1, 1);
        b.connect(tail, 0, next, 0).expect("fresh nodes");
        tail = next;
    }
    b.connect_counter(tail, 0, 0).expect("fresh node");
    b.add_input(head, 0).expect("fresh node");
    b.finalize().expect("a line is a valid uniform network")
}

#[cfg(test)]
mod serial_line_tests {
    use super::*;
    use crate::router::SequentialRouter;

    #[test]
    fn shape_and_counting() {
        let net = serial_line(3);
        assert_eq!(net.depth(), 3);
        assert_eq!(net.input_width(), 1);
        assert_eq!(net.output_width(), 1);
        let mut r = SequentialRouter::new(&net);
        for expect in 0..10u64 {
            assert_eq!(r.route(0).unwrap().value, expect);
        }
    }

    #[test]
    fn single_node_line() {
        let net = serial_line(1);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_depth_panics() {
        let _ = serial_line(0);
    }
}
