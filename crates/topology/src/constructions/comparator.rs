//! Comparator-network representation used by the recursive
//! constructions.
//!
//! Bitonic and periodic networks are *layered* networks in which every
//! layer pairs up all `w` wires into `w/2` two-input balancers. This
//! module represents such a network abstractly as a list of layers of
//! wire pairs, then *realizes* it as a validated [`Topology`]. A
//! balancer on the pair `(i, j)` routes its first output back onto wire
//! `i` and its second onto wire `j`, so a wire keeps its identity
//! through the whole network; the construction's output ordering is a
//! permutation of wires handed to [`realize`].

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, TopologyBuilder};

/// A logical wire index, stable through the whole construction.
pub(super) type Wire = usize;

/// One layer: the set of balancers `(first wire, second wire)` acting
/// in parallel. Every wire of the network appears exactly once.
pub(super) type Layer = Vec<(Wire, Wire)>;

/// An ordered list of layers under construction.
#[derive(Debug, Clone, Default)]
pub(super) struct LayerList {
    layers: Vec<Layer>,
}

impl LayerList {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Appends a complete layer.
    pub(super) fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// Appends a layer consisting of a single balancer.
    pub(super) fn push_single(&mut self, a: Wire, b: Wire) {
        self.layers.push(vec![(a, b)]);
    }

    /// Appends two equally deep sub-networks side by side: layer `i` of
    /// the result is the union of layer `i` of each part. The recursive
    /// constructions only ever compose sub-networks of equal depth;
    /// unequal depths would break uniformity.
    ///
    /// # Panics
    ///
    /// Panics if the two parts have different depths.
    pub(super) fn extend_parallel(&mut self, a: LayerList, b: LayerList) {
        assert_eq!(
            a.layers.len(),
            b.layers.len(),
            "parallel sub-networks must have equal depth"
        );
        for (mut la, lb) in a.layers.into_iter().zip(b.layers) {
            la.extend(lb);
            self.layers.push(la);
        }
    }

    pub(super) fn iter(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter()
    }

    pub(super) fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Materializes a layered pair network as a validated [`Topology`].
///
/// `width` is the number of wires; `outs` gives, for each network
/// output position `k`, the wire whose final value feeds counter `k`
/// (a permutation of `0..width`).
pub(super) fn realize(
    width: usize,
    layers: &LayerList,
    outs: &[Wire],
) -> Result<Topology, TopologyError> {
    debug_assert_eq!(outs.len(), width);
    debug_assert!(layers.depth() > 0, "a network needs at least one layer");

    let mut b = TopologyBuilder::new();

    // The node currently producing each wire's value, as
    // (node, out_port); None before the first layer.
    let mut producer: Vec<Option<(NodeId, usize)>> = vec![None; width];
    // Input ports consuming each wire in layer 1, recorded so network
    // inputs can be declared in wire order afterwards.
    let mut first_layer_consumer: Vec<Option<(NodeId, usize)>> = vec![None; width];

    for (depth, layer) in layers.iter().enumerate() {
        debug_assert_eq!(
            layer.len() * 2,
            width,
            "layer {depth} must cover every wire exactly once"
        );
        let mut new_producer = producer.clone();
        for &(wa, wb) in layer {
            let node = b.add_node(2, 2);
            for (in_port, wire) in [(0usize, wa), (1usize, wb)] {
                match producer[wire] {
                    Some((src, src_port)) => b.connect(src, src_port, node, in_port)?,
                    None => {
                        debug_assert_eq!(depth, 0, "wire {wire} first consumed after layer 1");
                        first_layer_consumer[wire] = Some((node, in_port));
                    }
                }
            }
            new_producer[wa] = Some((node, 0));
            new_producer[wb] = Some((node, 1));
        }
        producer = new_producer;

        if depth == 0 {
            // Declare network inputs x_0..x_{w-1} in wire order.
            for consumer in &first_layer_consumer {
                let (node, port) =
                    consumer.expect("every wire is consumed in layer 1 of a full-cover network");
                b.add_input(node, port)?;
            }
        }
    }

    for (k, &wire) in outs.iter().enumerate() {
        let (node, port) = producer[wire].expect("all wires produced after the last layer");
        b.connect_counter(node, port, k)?;
    }

    b.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realize_single_layer() {
        let mut layers = LayerList::new();
        layers.push(vec![(0, 1), (2, 3)]);
        let t = realize(4, &layers, &[0, 1, 2, 3]).unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.input_width(), 4);
        assert_eq!(t.output_width(), 4);
    }

    #[test]
    fn realize_respects_output_permutation() {
        use crate::router::SequentialRouter;
        let mut layers = LayerList::new();
        layers.push(vec![(0, 1)]);
        // counters swapped relative to wires: out0 <- wire 1, out1 <- wire 0
        let t = realize(2, &layers, &[1, 0]).unwrap();
        let mut r = SequentialRouter::new(&t);
        // the balancer's first token leaves on its port 0 = wire 0,
        // which now feeds counter 1
        let p = r.route(0).unwrap();
        assert_eq!(p.counter, 1);
    }

    #[test]
    fn extend_parallel_merges_layers() {
        let mut a = LayerList::new();
        a.push(vec![(0, 1)]);
        let mut b = LayerList::new();
        b.push(vec![(2, 3)]);
        let mut all = LayerList::new();
        all.extend_parallel(a, b);
        assert_eq!(all.depth(), 1);
        assert_eq!(all.iter().next().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "equal depth")]
    fn extend_parallel_rejects_unequal_depths() {
        let mut a = LayerList::new();
        a.push(vec![(0, 1)]);
        let b = LayerList::new();
        let mut all = LayerList::new();
        all.extend_parallel(a, b);
    }
}
