//! Input padding — the linearizing-prefix construction of
//! Corollary 3.12.
//!
//! Given a uniform counting network of depth `h` and a known constant
//! `k >= 2` with `c2 < k·c1`, prefixing every input with a path of
//! `h·(k - 2)` one-input/one-output balancers yields a network of depth
//! `h·(k - 1)` that is linearizable: any two time-disjoint traversals of
//! the padded network place the second token's entry into the original
//! sub-network more than `h·c2 - 2·h·c1` after the first token's exit,
//! so Theorem 3.6 applies.

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, TopologyBuilder, WireEnd};

/// Rebuilds `inner` with a chain of `pad` one-input/one-output
/// balancers prepended to every network input.
///
/// With `pad = 0` this returns a copy of `inner`. The padded network
/// has depth `inner.depth() + pad` and the same input/output widths.
///
/// # Errors
///
/// Propagates builder errors; none occur for a validated `inner`.
///
/// # Example
///
/// ```
/// use cnet_topology::constructions::{bitonic, pad_inputs};
///
/// let inner = bitonic(4)?;
/// let padded = pad_inputs(&inner, 5)?;
/// assert_eq!(padded.depth(), inner.depth() + 5);
/// assert_eq!(padded.input_width(), 4);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
pub fn pad_inputs(inner: &Topology, pad: usize) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();

    // Recreate every node of the inner network, keeping ids alignable
    // through a translation table indexed by the old node index.
    let mut translate: Vec<Option<NodeId>> = vec![None; inner.node_count()];
    for old in inner.iter_nodes() {
        let new = b.add_node(inner.fan_in(old), inner.fan_out(old));
        translate[old.index()] = Some(new);
    }
    let tr = |old: NodeId| translate[old.index()].expect("all nodes pre-created");

    // Copy the internal wiring.
    for old in inner.iter_nodes() {
        for port in 0..inner.fan_out(old) {
            match inner.output_wire(old, port) {
                WireEnd::Node {
                    node,
                    port: in_port,
                } => {
                    b.connect(tr(old), port, tr(node), in_port)?;
                }
                WireEnd::Counter { index } => {
                    b.connect_counter(tr(old), port, index)?;
                }
            }
        }
    }

    // Prefix each network input with a chain of `pad` 1-in/1-out nodes.
    for x in 0..inner.input_width() {
        let entry = inner.input(x);
        if pad == 0 {
            b.add_input(tr(entry.node), entry.port)?;
            continue;
        }
        let head = b.add_node(1, 1);
        let mut tail = head;
        for _ in 1..pad {
            let next = b.add_node(1, 1);
            b.connect(tail, 0, next, 0)?;
            tail = next;
        }
        b.connect(tail, 0, tr(entry.node), entry.port)?;
        b.add_input(head, 0)?;
    }

    b.finalize()
}

/// Corollary 3.12: the linearizing prefix for a known ratio bound `k`.
///
/// Prefixes every input of `inner` (depth `h`) with `h·(k - 2)`
/// one-input/one-output balancers, producing a network of depth
/// `h·(k - 1)` that is linearizable whenever `c2 < k·c1`.
///
/// # Errors
///
/// Propagates builder errors; none occur for a validated `inner`.
///
/// # Panics
///
/// Panics if `k < 2` — the corollary only applies for `k >= 2` (for
/// `k = 2` the network is returned unchanged, since `c2 <= 2·c1`
/// already implies linearizability by Corollary 3.9).
pub fn linearizing_prefix(inner: &Topology, k: usize) -> Result<Topology, TopologyError> {
    assert!(k >= 2, "corollary 3.12 requires k >= 2");
    pad_inputs(inner, inner.depth() * (k - 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::{bitonic, counting_tree, single_balancer};
    use crate::router::SequentialRouter;

    #[test]
    fn zero_padding_is_identity_shape() {
        let inner = bitonic(4).unwrap();
        let padded = pad_inputs(&inner, 0).unwrap();
        assert_eq!(padded.depth(), inner.depth());
        assert_eq!(padded.node_count(), inner.node_count());
        assert_eq!(padded.input_width(), inner.input_width());
        assert_eq!(padded.output_width(), inner.output_width());
    }

    #[test]
    fn padding_adds_depth_and_nodes() {
        let inner = bitonic(4).unwrap();
        let padded = pad_inputs(&inner, 3).unwrap();
        assert_eq!(padded.depth(), inner.depth() + 3);
        assert_eq!(
            padded.node_count(),
            inner.node_count() + 3 * inner.input_width()
        );
    }

    #[test]
    fn padded_network_still_counts() {
        let inner = bitonic(4).unwrap();
        let padded = pad_inputs(&inner, 2).unwrap();
        let mut r = SequentialRouter::new(&padded);
        for expect in 0..20u64 {
            assert_eq!(r.route((expect % 4) as usize).unwrap().value, expect);
        }
        assert!(r.output_counts().is_step());
    }

    #[test]
    fn corollary_3_12_depth_formula() {
        let inner = bitonic(8).unwrap(); // h = 6
        for k in 2..6 {
            let lin = linearizing_prefix(&inner, k).unwrap();
            assert_eq!(lin.depth(), inner.depth() * (k - 1), "k = {k}");
        }
    }

    #[test]
    fn k_equals_two_changes_nothing() {
        let inner = counting_tree(8).unwrap();
        let lin = linearizing_prefix(&inner, 2).unwrap();
        assert_eq!(lin.depth(), inner.depth());
        assert_eq!(lin.node_count(), inner.node_count());
    }

    #[test]
    #[should_panic(expected = "requires k >= 2")]
    fn k_below_two_panics() {
        let inner = single_balancer();
        let _ = linearizing_prefix(&inner, 1);
    }

    #[test]
    fn padding_preserves_tree_behaviour() {
        let inner = counting_tree(4).unwrap();
        let padded = pad_inputs(&inner, 4).unwrap();
        let mut a = SequentialRouter::new(&inner);
        let mut b = SequentialRouter::new(&padded);
        for _ in 0..17 {
            assert_eq!(a.route(0).unwrap().value, b.route(0).unwrap().value);
        }
    }
}
