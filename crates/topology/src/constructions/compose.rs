//! Serial composition of balancing networks.
//!
//! Wiring network `front`'s outputs to network `back`'s inputs yields a
//! uniform balancing network of depth `front.depth() + back.depth()`.
//! If `back` is a counting network the composition is one too (a
//! counting network's outputs form a step in quiescent states
//! *whatever* its input distribution), which is exactly how the
//! periodic network chains its `Block[w]` stages and how the
//! linearizing prefix of Corollary 3.12 is a composition of unary
//! chains with the original network.

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, TopologyBuilder, WireEnd};

/// Wires output counter `i` of `front` into network input `x_i` of
/// `back`, producing one combined network.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] (with the mismatched
/// width) if `front.output_width() != back.input_width()`; otherwise
/// only propagates internal builder errors, which cannot occur for
/// validated inputs.
///
/// # Example
///
/// ```
/// use cnet_topology::constructions::{block, compose, periodic};
/// use cnet_topology::router::SequentialRouter;
///
/// // Periodic[4] is Block[4] ∘ Block[4]:
/// let chained = compose(&block(4)?, &block(4)?)?;
/// let reference = periodic(4)?;
/// assert_eq!(chained.depth(), reference.depth());
///
/// let mut a = SequentialRouter::new(&chained);
/// let mut b = SequentialRouter::new(&reference);
/// for i in 0..40 {
///     assert_eq!(a.route(i % 4)?.value, b.route(i % 4)?.value);
/// }
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
pub fn compose(front: &Topology, back: &Topology) -> Result<Topology, TopologyError> {
    if front.output_width() != back.input_width() {
        return Err(TopologyError::WidthNotPowerOfTwo {
            width: back.input_width(),
        });
    }
    let mut b = TopologyBuilder::new();

    let mut front_ids: Vec<Option<NodeId>> = vec![None; front.node_count()];
    for old in front.iter_nodes() {
        front_ids[old.index()] = Some(b.add_node(front.fan_in(old), front.fan_out(old)));
    }
    let mut back_ids: Vec<Option<NodeId>> = vec![None; back.node_count()];
    for old in back.iter_nodes() {
        back_ids[old.index()] = Some(b.add_node(back.fan_in(old), back.fan_out(old)));
    }
    let ft = |old: NodeId| front_ids[old.index()].expect("front nodes pre-created");
    let bt = |old: NodeId| back_ids[old.index()].expect("back nodes pre-created");

    // front wiring; counter i becomes back's input x_i
    for old in front.iter_nodes() {
        for port in 0..front.fan_out(old) {
            match front.output_wire(old, port) {
                WireEnd::Node {
                    node,
                    port: in_port,
                } => {
                    b.connect(ft(old), port, ft(node), in_port)?;
                }
                WireEnd::Counter { index } => {
                    let entry = back.input(index);
                    b.connect(ft(old), port, bt(entry.node), entry.port)?;
                }
            }
        }
    }
    // back wiring, counters preserved
    for old in back.iter_nodes() {
        for port in 0..back.fan_out(old) {
            match back.output_wire(old, port) {
                WireEnd::Node {
                    node,
                    port: in_port,
                } => {
                    b.connect(bt(old), port, bt(node), in_port)?;
                }
                WireEnd::Counter { index } => {
                    b.connect_counter(bt(old), port, index)?;
                }
            }
        }
    }
    // the combined network's inputs are front's inputs, in order
    for x in 0..front.input_width() {
        let entry = front.input(x);
        b.add_input(ft(entry.node), entry.port)?;
    }
    b.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::{bitonic, block, counting_tree, periodic, single_balancer};
    use crate::router::SequentialRouter;
    use proptest::prelude::*;

    #[test]
    fn compose_depths_and_widths_add_up() {
        let a = bitonic(4).unwrap();
        let b = bitonic(4).unwrap();
        let c = compose(&a, &b).unwrap();
        assert_eq!(c.depth(), a.depth() + b.depth());
        assert_eq!(c.input_width(), 4);
        assert_eq!(c.output_width(), 4);
        assert_eq!(c.node_count(), a.node_count() + b.node_count());
    }

    #[test]
    fn periodic_equals_chained_blocks() {
        let reference = periodic(8).unwrap();
        let blocks = compose(
            &compose(&block(8).unwrap(), &block(8).unwrap()).unwrap(),
            &block(8).unwrap(),
        )
        .unwrap();
        assert_eq!(blocks.depth(), reference.depth());
        let mut a = SequentialRouter::new(&blocks);
        let mut r = SequentialRouter::new(&reference);
        for i in 0..64usize {
            let pa = a.route(i * 5 % 8).unwrap();
            let pr = r.route(i * 5 % 8).unwrap();
            assert_eq!(pa.counter, pr.counter, "token {i}");
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let a = bitonic(4).unwrap();
        let b = bitonic(8).unwrap();
        assert!(compose(&a, &b).is_err());
        // a tree has a single input: nothing with width > 1 composes into it
        let t = counting_tree(4).unwrap();
        assert!(compose(&a, &t).is_err());
    }

    #[test]
    fn tree_composes_into_wide_network() {
        // tree outputs (4) -> bitonic inputs (4): a counting network
        let t = counting_tree(4).unwrap();
        let net = compose(&t, &bitonic(4).unwrap()).unwrap();
        assert_eq!(net.input_width(), 1);
        let mut r = SequentialRouter::new(&net);
        for expect in 0..32u64 {
            assert_eq!(r.route(0).unwrap().value, expect);
        }
        assert!(r.output_counts().is_step());
    }

    #[test]
    fn compose_with_single_balancer_back() {
        // anything with 2 outputs composes into the width-2 balancer
        let front = single_balancer();
        let back = single_balancer();
        let net = compose(&front, &back).unwrap();
        assert_eq!(net.depth(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// front ∘ counting-network is a counting network, whatever the
        /// front half is.
        #[test]
        fn composition_counts(
            tokens in proptest::collection::vec(0usize..8, 0..120),
        ) {
            // a *single block* is not a counting network; composing a
            // bitonic behind it must still count
            let net = compose(&block(8).unwrap(), &bitonic(8).unwrap()).unwrap();
            let mut r = SequentialRouter::new(&net);
            for t in &tokens {
                r.route(t % 8).unwrap();
            }
            prop_assert!(r.output_counts().is_step());
        }
    }
}

#[cfg(test)]
mod algebra_tests {
    use super::*;
    use crate::constructions::{bitonic, block, pad_inputs};
    use crate::router::SequentialRouter;
    use proptest::prelude::*;

    /// Routes the same token feed through two topologies and compares
    /// values.
    fn behaviourally_equal(a: &Topology, b: &Topology, feeds: &[usize]) -> bool {
        assert_eq!(a.input_width(), b.input_width());
        let mut ra = SequentialRouter::new(a);
        let mut rb = SequentialRouter::new(b);
        feeds.iter().all(|&x| {
            let pa = ra.route(x % a.input_width()).unwrap();
            let pb = rb.route(x % b.input_width()).unwrap();
            pa.value == pb.value && pa.counter == pb.counter
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Serial composition is behaviourally associative.
        #[test]
        fn compose_is_associative(feeds in proptest::collection::vec(0usize..4, 1..60)) {
            let a = block(4).unwrap();
            let b = block(4).unwrap();
            let c = bitonic(4).unwrap();
            let left = compose(&compose(&a, &b).unwrap(), &c).unwrap();
            let right = compose(&a, &compose(&b, &c).unwrap()).unwrap();
            prop_assert_eq!(left.depth(), right.depth());
            prop_assert!(behaviourally_equal(&left, &right, &feeds));
        }

        /// Padding composes additively: pad(pad(net, a), b) ≡ pad(net, a+b).
        #[test]
        fn padding_is_additive(
            a in 0usize..4,
            b in 0usize..4,
            feeds in proptest::collection::vec(0usize..4, 1..40),
        ) {
            let net = bitonic(4).unwrap();
            let two_step = pad_inputs(&pad_inputs(&net, a).unwrap(), b).unwrap();
            let one_step = pad_inputs(&net, a + b).unwrap();
            prop_assert_eq!(two_step.depth(), one_step.depth());
            prop_assert!(behaviourally_equal(&two_step, &one_step, &feeds));
        }
    }
}
