//! The counting tree of Shavit and Zemach's diffracting trees.
//!
//! A counting tree `Tree[w]` is a complete binary tree of 1-in/2-out
//! balancers of depth `log w`. Tokens enter at the root (the network
//! has a single input); the root's first output leads to the subtree
//! whose leaves are the even-numbered counters and its second output to
//! the odd-numbered counters, recursively, which yields the step
//! property on the leaves in every quiescent state.
//!
//! Diffracting trees implement exactly this topology but replace each
//! balancer's toggle bit with a "prism" that lets pairs of tokens
//! *diffract* (one left, one right) without touching the toggle; the
//! quiescent behaviour — and therefore this topology — is identical.

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, TopologyBuilder};

/// Builds a `d`-ary counting tree: a complete tree of 1-in/`arity`-out
/// balancers of depth `log_d width` — the "uniform trees" of Busch and
/// Mavronicolas the paper's Corollary 3.11 also covers.
///
/// Child `i` of a node owns the counters congruent to `i` modulo the
/// arity (recursively), which gives the step property on the leaves in
/// every quiescent state. [`counting_tree`] is the `arity = 2` case.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] unless `arity >= 2`
/// and `width` is a positive power of `arity` with at least one level
/// (the error reuses the power-of-two variant for uniformity of the
/// API; the offending width is reported either way).
///
/// # Example
///
/// ```
/// let tree = cnet_topology::constructions::counting_tree_d(27, 3)?;
/// assert_eq!(tree.depth(), 3);
/// assert_eq!(tree.output_width(), 27);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
pub fn counting_tree_d(width: usize, arity: usize) -> Result<Topology, TopologyError> {
    if arity < 2 || !is_power_of(width, arity) {
        return Err(TopologyError::WidthNotPowerOfTwo { width });
    }
    let mut b = TopologyBuilder::new();
    let counters: Vec<usize> = (0..width).collect();
    let root = subtree_d(&mut b, &counters, arity)?;
    b.add_input(root, 0)?;
    b.finalize()
}

fn is_power_of(width: usize, arity: usize) -> bool {
    if width < arity {
        return false;
    }
    let mut w = width;
    while w > 1 {
        if !w.is_multiple_of(arity) {
            return false;
        }
        w /= arity;
    }
    true
}

/// Recursively builds a `d`-ary subtree over `counters`; child `i`
/// receives the counters at positions congruent to `i` mod `arity`.
fn subtree_d(
    b: &mut TopologyBuilder,
    counters: &[usize],
    arity: usize,
) -> Result<NodeId, TopologyError> {
    debug_assert!(counters.len() >= arity);
    let node = b.add_node(1, arity);
    if counters.len() == arity {
        for (port, &c) in counters.iter().enumerate() {
            b.connect_counter(node, port, c)?;
        }
    } else {
        for port in 0..arity {
            let share: Vec<usize> = counters.iter().copied().skip(port).step_by(arity).collect();
            let child = subtree_d(b, &share, arity)?;
            b.connect(node, port, child, 0)?;
        }
    }
    Ok(node)
}

/// Builds the counting tree with `width` leaves (output counters).
///
/// The resulting network has one input, `width` outputs, and depth
/// `log width`.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] unless `width` is a
/// power of two `>= 2`.
///
/// # Example
///
/// ```
/// let tree = cnet_topology::constructions::counting_tree(8)?;
/// assert_eq!(tree.input_width(), 1);
/// assert_eq!(tree.output_width(), 8);
/// assert_eq!(tree.depth(), 3);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
pub fn counting_tree(width: usize) -> Result<Topology, TopologyError> {
    if width < 2 || !width.is_power_of_two() {
        return Err(TopologyError::WidthNotPowerOfTwo { width });
    }
    let mut b = TopologyBuilder::new();
    let counters: Vec<usize> = (0..width).collect();
    let root = subtree(&mut b, &counters)?;
    b.add_input(root, 0)?;
    b.finalize()
}

/// Recursively builds the subtree whose leaves feed `counters`
/// (interleaved: first output gets the even-position counters, second
/// output the odd-position ones), returning the subtree root.
fn subtree(b: &mut TopologyBuilder, counters: &[usize]) -> Result<NodeId, TopologyError> {
    debug_assert!(counters.len() >= 2 && counters.len().is_power_of_two());
    let node = b.add_node(1, 2);
    if counters.len() == 2 {
        b.connect_counter(node, 0, counters[0])?;
        b.connect_counter(node, 1, counters[1])?;
    } else {
        let evens: Vec<usize> = counters.iter().copied().step_by(2).collect();
        let odds: Vec<usize> = counters.iter().copied().skip(1).step_by(2).collect();
        let left = subtree(b, &evens)?;
        let right = subtree(b, &odds)?;
        b.connect(node, 0, left, 0)?;
        b.connect(node, 1, right, 0)?;
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::SequentialRouter;
    use proptest::prelude::*;

    #[test]
    fn tree_shapes() {
        for w in [2usize, 4, 8, 16, 32, 64] {
            let t = counting_tree(w).unwrap();
            assert_eq!(t.depth(), w.trailing_zeros() as usize, "width {w}");
            assert_eq!(t.input_width(), 1);
            assert_eq!(t.output_width(), w);
            assert_eq!(t.node_count(), w - 1, "a binary tree with w leaves");
        }
    }

    #[test]
    fn invalid_widths_rejected() {
        for w in [0usize, 1, 3, 5, 12] {
            assert!(matches!(
                counting_tree(w),
                Err(TopologyError::WidthNotPowerOfTwo { .. })
            ));
        }
    }

    #[test]
    fn sequential_tokens_count_consecutively() {
        let t = counting_tree(8).unwrap();
        let mut r = SequentialRouter::new(&t);
        for expect in 0..40u64 {
            assert_eq!(r.route(0).unwrap().value, expect);
        }
    }

    #[test]
    fn first_token_reaches_counter_zero() {
        for w in [2usize, 4, 8, 16] {
            let t = counting_tree(w).unwrap();
            let mut r = SequentialRouter::new(&t);
            assert_eq!(r.route(0).unwrap().counter, 0);
        }
    }

    #[test]
    fn layers_double_in_size() {
        let t = counting_tree(16).unwrap();
        for l in 1..=t.depth() {
            assert_eq!(t.layer(l).len(), 1 << (l - 1), "layer {l}");
        }
    }

    proptest! {
        #[test]
        fn tree_step_property(width_exp in 1usize..6, tokens in 0usize..300) {
            let w = 1 << width_exp;
            let t = counting_tree(w).unwrap();
            let mut r = SequentialRouter::new(&t);
            for _ in 0..tokens {
                r.route(0).unwrap();
            }
            prop_assert!(r.output_counts().is_step());
            prop_assert_eq!(r.output_counts().total(), tokens as u64);
        }
    }
}

#[cfg(test)]
mod d_ary_tests {
    use super::*;
    use crate::router::SequentialRouter;
    use proptest::prelude::*;

    #[test]
    fn d_ary_shapes() {
        for (w, d, depth, nodes) in [
            (9usize, 3usize, 2usize, 4usize),
            (27, 3, 3, 13),
            (16, 4, 2, 5),
            (64, 4, 3, 21),
            (8, 2, 3, 7),
        ] {
            let t = counting_tree_d(w, d).unwrap();
            assert_eq!(t.depth(), depth, "w={w} d={d}");
            assert_eq!(t.node_count(), nodes, "w={w} d={d}");
            assert_eq!(t.output_width(), w);
            assert_eq!(t.input_width(), 1);
        }
    }

    #[test]
    fn binary_case_matches_counting_tree() {
        let a = counting_tree(16).unwrap();
        let b = counting_tree_d(16, 2).unwrap();
        let mut ra = SequentialRouter::new(&a);
        let mut rb = SequentialRouter::new(&b);
        for _ in 0..50 {
            let pa = ra.route(0).unwrap();
            let pb = rb.route(0).unwrap();
            assert_eq!(pa.value, pb.value);
            assert_eq!(pa.counter, pb.counter);
        }
    }

    #[test]
    fn d_ary_counts_consecutively() {
        let t = counting_tree_d(27, 3).unwrap();
        let mut r = SequentialRouter::new(&t);
        for expect in 0..81u64 {
            assert_eq!(r.route(0).unwrap().value, expect);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(counting_tree_d(9, 1).is_err());
        assert!(counting_tree_d(10, 3).is_err());
        assert!(counting_tree_d(3, 9).is_err());
        assert!(counting_tree_d(0, 2).is_err());
        assert!(counting_tree_d(2, 3).is_err());
    }

    proptest! {
        #[test]
        fn d_ary_step_property(levels in 1usize..4, arity in 2usize..5, tokens in 0usize..200) {
            let w = arity.pow(levels as u32);
            let t = counting_tree_d(w, arity).unwrap();
            let mut r = SequentialRouter::new(&t);
            for _ in 0..tokens {
                r.route(0).unwrap();
            }
            prop_assert!(r.output_counts().is_step());
        }
    }
}
