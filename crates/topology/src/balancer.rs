//! The state of a single balancing node.
//!
//! A balancer with `d` ordered outputs routes its `t`-th token (counting
//! from zero, over all inputs) to output `t mod d`. This is exactly the
//! behaviour of the toggle-bit balancer of Aspnes, Herlihy, and Shavit
//! for `d = 2`, generalized to arbitrary fan-out in the style of
//! Aharonson and Attiya, and it preserves the *step property* on the
//! node's outputs in every state:
//!
//! > `0 <= y_i - y_j <= 1` for any `i < j`.

use std::fmt;

/// Mutable routing state of one balancing node.
///
/// The node's transition is modeled as instantaneous (the paper's
/// Section 2): a token arrives on any input port, the state advances
/// atomically, and the token leaves on the selected output port.
///
/// # Example
///
/// ```
/// use cnet_topology::BalancerState;
///
/// let mut b = BalancerState::new(2);
/// assert_eq!(b.route(), 0);
/// assert_eq!(b.route(), 1);
/// assert_eq!(b.route(), 0);
/// assert!(b.output_counts().iter().sum::<u64>() == 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BalancerState {
    fan_out: usize,
    routed: u64,
}

impl BalancerState {
    /// Creates a fresh balancer with the given fan-out, with all output
    /// counts zero.
    ///
    /// # Panics
    ///
    /// Panics if `fan_out` is zero.
    #[must_use]
    pub fn new(fan_out: usize) -> Self {
        assert!(fan_out > 0, "balancer fan-out must be positive");
        BalancerState { fan_out, routed: 0 }
    }

    /// The number of ordered output ports.
    #[must_use]
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// Total number of tokens routed through this balancer so far.
    #[must_use]
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Routes one token, returning the output port it exits on.
    ///
    /// The `t`-th token (zero-based) exits on port `t mod fan_out`,
    /// which maintains the step property on the outputs.
    pub fn route(&mut self) -> usize {
        let out = (self.routed % self.fan_out as u64) as usize;
        self.routed += 1;
        out
    }

    /// The output port the *next* token would take, without routing it.
    #[must_use]
    pub fn peek(&self) -> usize {
        (self.routed % self.fan_out as u64) as usize
    }

    /// Per-output token counts `y_0, ..., y_{d-1}` in the current state.
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        let d = self.fan_out as u64;
        (0..self.fan_out)
            .map(|i| {
                let i = i as u64;
                // tokens 0..routed with index ≡ i (mod d)
                if self.routed > i {
                    (self.routed - i - 1) / d + 1
                } else {
                    0
                }
            })
            .collect()
    }

    /// Resets the balancer to its initial state.
    pub fn reset(&mut self) {
        self.routed = 0;
    }
}

impl fmt::Display for BalancerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "balancer(fan_out={}, routed={}, next={})",
            self.fan_out,
            self.routed,
            self.peek()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_routing() {
        let mut b = BalancerState::new(4);
        let outs: Vec<usize> = (0..10).map(|_| b.route()).collect();
        assert_eq!(outs, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn step_property_holds_in_every_state() {
        let mut b = BalancerState::new(3);
        for _ in 0..20 {
            let counts = b.output_counts();
            for i in 0..counts.len() {
                for j in (i + 1)..counts.len() {
                    let diff = counts[i] as i64 - counts[j] as i64;
                    assert!((0..=1).contains(&diff), "step violated: {counts:?}");
                }
            }
            b.route();
        }
    }

    #[test]
    fn output_counts_sum_to_routed() {
        let mut b = BalancerState::new(5);
        for t in 0..37 {
            assert_eq!(b.output_counts().iter().sum::<u64>(), t);
            b.route();
        }
    }

    #[test]
    fn peek_matches_route() {
        let mut b = BalancerState::new(2);
        for _ in 0..8 {
            let p = b.peek();
            assert_eq!(b.route(), p);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = BalancerState::new(2);
        b.route();
        b.route();
        b.route();
        b.reset();
        assert_eq!(b.routed(), 0);
        assert_eq!(b.peek(), 0);
    }

    #[test]
    fn fan_out_one_always_routes_to_zero() {
        let mut b = BalancerState::new(1);
        for _ in 0..5 {
            assert_eq!(b.route(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "fan-out must be positive")]
    fn zero_fan_out_panics() {
        let _ = BalancerState::new(0);
    }

    #[test]
    fn display_mentions_state() {
        let mut b = BalancerState::new(2);
        b.route();
        let s = b.to_string();
        assert!(s.contains("routed=1"));
        assert!(s.contains("next=1"));
    }
}
