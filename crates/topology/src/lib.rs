//! Balancing-network model and counting-network constructions.
//!
//! This crate provides the *structural* half of the PODC '96 paper
//! "Counting Networks are Practically Linearizable": a graph model of
//! balancing networks (acyclically wired multi-input/multi-output
//! *balancers* feeding atomic output counters), validation of the
//! *uniformity* property the paper's analysis relies on, and the classic
//! network constructions the paper studies:
//!
//! * [`constructions::bitonic`] — the bitonic counting network of
//!   Aspnes, Herlihy, and Shavit,
//! * [`constructions::periodic`] — their periodic counting network,
//! * [`constructions::counting_tree`] — the counting-tree shape used by
//!   diffracting trees (Shavit and Zemach),
//! * [`constructions::linearizing_prefix`] — the depth-`h(k-2)` input
//!   padding of Corollary 3.12 that makes any uniform counting network
//!   linearizable when `c2 < k·c1`,
//! * [`constructions::single_balancer`] — the width-2 network of the
//!   paper's introductory example.
//!
//! A [`Topology`] is built with a [`TopologyBuilder`] and is immutable
//! once validated. Token routing state lives outside the topology in a
//! [`router::SequentialRouter`], so one topology can back many
//! executions (sequential, timed, simulated, or native-threaded).
//!
//! # Example
//!
//! ```
//! use cnet_topology::{constructions, router::SequentialRouter};
//!
//! let net = constructions::bitonic(8)?;
//! assert_eq!(net.input_width(), 8);
//! assert_eq!(net.output_width(), 8);
//! // depth of Bitonic[w] is log w (log w + 1) / 2 layers
//! assert_eq!(net.depth(), 6);
//!
//! // Route 100 tokens round-robin and check the step property.
//! let mut router = SequentialRouter::new(&net);
//! for i in 0..100 {
//!     router.route(i % 8)?;
//! }
//! assert!(router.output_counts().is_step());
//! # Ok::<(), cnet_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balancer;
pub mod constructions;
pub mod fabric;
pub mod io;
pub mod random;
pub mod router;
pub mod step;
pub mod topology;
pub mod verify;

mod error;

pub use balancer::BalancerState;
pub use error::TopologyError;
pub use fabric::{Fabric, FabricError, FabricShape, LinkSpec, RetryPolicy, SwitchSpec};
pub use step::OutputCounts;
pub use topology::{NodeId, PortRef, Topology, TopologyBuilder, WireEnd};
