//! The *step property* on ordered output sequences.
//!
//! A sequence `Y_0, ..., Y_{w-1}` has the step property when
//! `0 <= Y_i - Y_j <= 1` for all `i < j`. A balancing network is a
//! *counting network* exactly when its output counters satisfy the step
//! property in every quiescent state (Section 2 of the paper).

use std::fmt;

/// Per-output token counts of a network, in output order.
///
/// # Example
///
/// ```
/// use cnet_topology::OutputCounts;
///
/// let ok = OutputCounts::from(vec![3, 3, 2, 2]);
/// assert!(ok.is_step());
///
/// let bad = OutputCounts::from(vec![3, 1, 3, 2]);
/// assert!(!bad.is_step());
/// assert!(bad.step_violation().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OutputCounts(Vec<u64>);

impl OutputCounts {
    /// Creates counts that are all zero for `width` outputs.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        OutputCounts(vec![0; width])
    }

    /// The number of outputs.
    #[must_use]
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Total number of tokens across all outputs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Read access to the raw counts.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Increments the count of output `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn increment(&mut self, i: usize) {
        self.0[i] += 1;
    }

    /// Whether the counts satisfy the step property
    /// `0 <= Y_i - Y_j <= 1` for all `i < j`.
    #[must_use]
    pub fn is_step(&self) -> bool {
        self.step_violation().is_none()
    }

    /// The first pair `(i, j)` with `i < j` violating the step property,
    /// or `None` if the sequence is a step.
    ///
    /// Because the step property is transitive over adjacent pairs plus
    /// the global bound, we check all pairs directly; widths are small
    /// (at most a few hundred) so the quadratic scan is irrelevant.
    #[must_use]
    pub fn step_violation(&self) -> Option<(usize, usize)> {
        for i in 0..self.0.len() {
            for j in (i + 1)..self.0.len() {
                let diff = self.0[i] as i64 - self.0[j] as i64;
                if !(0..=1).contains(&diff) {
                    return Some((i, j));
                }
            }
        }
        None
    }

    /// The unique step-shaped distribution of `total` tokens over
    /// `width` outputs: `a_i = ceil((total - i) / width)`.
    ///
    /// This is the vector `(a_0, ..., a_{w-1})` of Lemma 3.5, uniquely
    /// determined by `total = sum a_i` and the step property.
    #[must_use]
    pub fn step_distribution(total: u64, width: usize) -> Self {
        let w = width as u64;
        OutputCounts(
            (0..width)
                .map(|i| {
                    let i = i as u64;
                    if total > i {
                        (total - i - 1) / w + 1
                    } else {
                        0
                    }
                })
                .collect(),
        )
    }

    /// Whether every output count is at least the corresponding count in
    /// `floor` (used when applying Lemma 3.5: tokens entering later can
    /// only increase per-output counts).
    #[must_use]
    pub fn dominates(&self, floor: &OutputCounts) -> bool {
        self.0.len() == floor.0.len() && self.0.iter().zip(&floor.0).all(|(a, b)| a >= b)
    }
}

impl From<Vec<u64>> for OutputCounts {
    fn from(v: Vec<u64>) -> Self {
        OutputCounts(v)
    }
}

impl FromIterator<u64> for OutputCounts {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        OutputCounts(iter.into_iter().collect())
    }
}

impl fmt::Display for OutputCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton_are_steps() {
        assert!(OutputCounts::from(vec![]).is_step());
        assert!(OutputCounts::from(vec![17]).is_step());
    }

    #[test]
    fn flat_and_single_step_are_steps() {
        assert!(OutputCounts::from(vec![2, 2, 2, 2]).is_step());
        assert!(OutputCounts::from(vec![3, 3, 2, 2]).is_step());
        assert!(OutputCounts::from(vec![3, 2, 2, 2]).is_step());
    }

    #[test]
    fn increasing_sequence_is_not_step() {
        let c = OutputCounts::from(vec![1, 2]);
        assert_eq!(c.step_violation(), Some((0, 1)));
    }

    #[test]
    fn gap_of_two_is_not_step() {
        assert!(!OutputCounts::from(vec![4, 2, 2]).is_step());
    }

    #[test]
    fn step_distribution_examples() {
        assert_eq!(
            OutputCounts::step_distribution(5, 4).as_slice(),
            &[2, 1, 1, 1]
        );
        assert_eq!(OutputCounts::step_distribution(0, 3).as_slice(), &[0, 0, 0]);
        assert_eq!(
            OutputCounts::step_distribution(8, 4).as_slice(),
            &[2, 2, 2, 2]
        );
    }

    #[test]
    fn dominates_is_pointwise() {
        let a = OutputCounts::from(vec![3, 2, 2]);
        let b = OutputCounts::from(vec![2, 2, 2]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
        // mismatched widths never dominate
        assert!(!a.dominates(&OutputCounts::from(vec![1, 1])));
    }

    #[test]
    fn increment_updates_total() {
        let mut c = OutputCounts::zeros(3);
        c.increment(1);
        c.increment(1);
        c.increment(0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.as_slice(), &[1, 2, 0]);
    }

    proptest! {
        #[test]
        fn step_distribution_is_a_step_and_sums(total in 0u64..10_000, width in 1usize..64) {
            let d = OutputCounts::step_distribution(total, width);
            prop_assert!(d.is_step());
            prop_assert_eq!(d.total(), total);
        }

        /// The step distribution is the *unique* step vector with the
        /// given total: any step vector with that total equals it.
        #[test]
        fn step_vectors_are_unique(total in 0u64..1000, width in 1usize..32) {
            let d = OutputCounts::step_distribution(total, width);
            // perturb any coordinate pair and the result is either not a
            // step or changes the total
            for i in 0..width {
                for j in 0..width {
                    if i == j { continue; }
                    let mut v = d.as_slice().to_vec();
                    if v[j] == 0 { continue; }
                    v[i] += 1;
                    v[j] -= 1;
                    let p = OutputCounts::from(v);
                    prop_assert!(!p.is_step() || p == d);
                }
            }
        }
    }
}
