//! The immutable wiring graph of a balancing network.
//!
//! A [`Topology`] records balancing nodes, the wires between their
//! ports, the network inputs, and the output counters. Construction
//! goes through [`TopologyBuilder`], whose [`TopologyBuilder::finalize`]
//! validates the structural invariants the paper's analysis requires:
//!
//! * every node input port is driven exactly once (by a wire or a
//!   network input), every node output port and counter is wired
//!   exactly once;
//! * the wiring is acyclic;
//! * the network is **uniform** (Definition 2.1): every node lies on a
//!   path from inputs to outputs and all input-to-output paths have
//!   equal length. Consequently every node belongs to a unique *layer*
//!   and the network has a well-defined *depth* `h` — the number of
//!   links between an input node and an output counter.

use std::fmt;

use crate::error::TopologyError;

/// Identifier of a balancing node within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index in the topology's node list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A reference to one port (input or output) of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The node owning the port.
    pub node: NodeId,
    /// The port index within the node.
    pub port: usize,
}

/// Where a node's output wire terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireEnd {
    /// The wire feeds input `port` of `node`.
    Node {
        /// Destination node.
        node: NodeId,
        /// Destination input port.
        port: usize,
    },
    /// The wire feeds the atomic output counter with this index.
    Counter {
        /// Destination counter index (the network output `Y_index`).
        index: usize,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) fan_in: usize,
    pub(crate) fan_out: usize,
    /// Wire target per output port; `None` while building.
    pub(crate) outputs: Vec<Option<WireEnd>>,
    /// Whether each input port has been driven; used for validation.
    pub(crate) inputs_driven: Vec<bool>,
}

/// Incremental builder for a [`Topology`].
///
/// # Example
///
/// Build the paper's introductory width-2 network: one balancer feeding
/// two counters.
///
/// ```
/// use cnet_topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let bal = b.add_node(2, 2);
/// b.add_input(bal, 0)?;
/// b.add_input(bal, 1)?;
/// b.connect_counter(bal, 0, 0)?;
/// b.connect_counter(bal, 1, 1)?;
/// let net = b.finalize()?;
/// assert_eq!(net.depth(), 1);
/// assert_eq!(net.output_width(), 2);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    inputs: Vec<PortRef>,
    /// Which counter indices have been wired.
    counters: Vec<bool>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a balancing node with the given fan-in and fan-out,
    /// returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` or `fan_out` is zero.
    pub fn add_node(&mut self, fan_in: usize, fan_out: usize) -> NodeId {
        assert!(fan_in > 0, "node fan-in must be positive");
        assert!(fan_out > 0, "node fan-out must be positive");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            fan_in,
            fan_out,
            outputs: vec![None; fan_out],
            inputs_driven: vec![false; fan_in],
        });
        id
    }

    /// Declares input `port` of `node` to be a network input.
    ///
    /// Network inputs are numbered in declaration order: the first call
    /// creates network input `x_0`, the second `x_1`, and so on.
    ///
    /// # Errors
    ///
    /// Returns an error if the node or port does not exist or the port
    /// is already driven.
    pub fn add_input(&mut self, node: NodeId, port: usize) -> Result<usize, TopologyError> {
        self.check_in_port(node, port)?;
        self.drive_input(node, port)?;
        self.inputs.push(PortRef { node, port });
        Ok(self.inputs.len() - 1)
    }

    /// Wires output `out_port` of `from` to input `in_port` of `to`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist, the output is
    /// already wired, or the input is already driven.
    pub fn connect(
        &mut self,
        from: NodeId,
        out_port: usize,
        to: NodeId,
        in_port: usize,
    ) -> Result<(), TopologyError> {
        self.check_out_port(from, out_port)?;
        self.check_in_port(to, in_port)?;
        self.wire_output(
            from,
            out_port,
            WireEnd::Node {
                node: to,
                port: in_port,
            },
        )?;
        self.drive_input(to, in_port)?;
        Ok(())
    }

    /// Wires output `out_port` of `from` to output counter `counter`.
    ///
    /// # Errors
    ///
    /// Returns an error if the node or port does not exist, the output
    /// is already wired, or the counter is already driven.
    pub fn connect_counter(
        &mut self,
        from: NodeId,
        out_port: usize,
        counter: usize,
    ) -> Result<(), TopologyError> {
        self.check_out_port(from, out_port)?;
        if counter >= self.counters.len() {
            self.counters.resize(counter + 1, false);
        }
        if self.counters[counter] {
            return Err(TopologyError::CounterAlreadyDriven { counter });
        }
        self.wire_output(from, out_port, WireEnd::Counter { index: counter })?;
        self.counters[counter] = true;
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<&Node, TopologyError> {
        self.nodes
            .get(node.0)
            .ok_or(TopologyError::UnknownNode { node })
    }

    fn check_in_port(&self, node: NodeId, port: usize) -> Result<(), TopologyError> {
        let n = self.check_node(node)?;
        if port >= n.fan_in {
            return Err(TopologyError::PortOutOfRange {
                node,
                port,
                available: n.fan_in,
            });
        }
        Ok(())
    }

    fn check_out_port(&self, node: NodeId, port: usize) -> Result<(), TopologyError> {
        let n = self.check_node(node)?;
        if port >= n.fan_out {
            return Err(TopologyError::PortOutOfRange {
                node,
                port,
                available: n.fan_out,
            });
        }
        Ok(())
    }

    fn wire_output(
        &mut self,
        node: NodeId,
        port: usize,
        end: WireEnd,
    ) -> Result<(), TopologyError> {
        let slot = &mut self.nodes[node.0].outputs[port];
        if slot.is_some() {
            return Err(TopologyError::OutputAlreadyWired { node, port });
        }
        *slot = Some(end);
        Ok(())
    }

    fn drive_input(&mut self, node: NodeId, port: usize) -> Result<(), TopologyError> {
        let slot = &mut self.nodes[node.0].inputs_driven[port];
        if *slot {
            return Err(TopologyError::InputAlreadyDriven { node, port });
        }
        *slot = true;
        Ok(())
    }

    /// Validates the wiring and produces an immutable [`Topology`].
    ///
    /// # Errors
    ///
    /// Returns an error if any port or counter is dangling, the graph is
    /// cyclic, or the network is not uniform (Definition 2.1).
    pub fn finalize(self) -> Result<Topology, TopologyError> {
        if self.inputs.is_empty() {
            return Err(TopologyError::NoInputs);
        }
        if self.counters.is_empty() {
            return Err(TopologyError::NoOutputs);
        }
        for (c, wired) in self.counters.iter().enumerate() {
            if !wired {
                return Err(TopologyError::UnwiredCounter { counter: c });
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for (p, driven) in n.inputs_driven.iter().enumerate() {
                if !driven {
                    return Err(TopologyError::UndrivenInput {
                        node: NodeId(i),
                        port: p,
                    });
                }
            }
            for (p, out) in n.outputs.iter().enumerate() {
                if out.is_none() {
                    return Err(TopologyError::UnwiredOutput {
                        node: NodeId(i),
                        port: p,
                    });
                }
            }
        }

        let layers = assign_layers(&self.nodes, &self.inputs)?;
        let depth = check_uniformity(&self.nodes, &layers, self.counters.len())?;

        let mut layer_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); depth];
        for (i, layer) in layers.iter().enumerate() {
            layer_nodes[layer - 1].push(NodeId(i));
        }

        Ok(Topology {
            nodes: self.nodes,
            inputs: self.inputs,
            output_width: self.counters.len(),
            node_layer: layers,
            layer_nodes,
            depth,
        })
    }
}

/// Assigns a 1-based layer to every node: input nodes are layer 1 and a
/// wire always goes from layer `i` to layer `i + 1`. Fails if the graph
/// is cyclic, a node is unreachable, or a node is reachable at two
/// different distances (non-uniformity).
fn assign_layers(nodes: &[Node], inputs: &[PortRef]) -> Result<Vec<usize>, TopologyError> {
    let mut layer: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue: Vec<NodeId> = Vec::new();
    for pr in inputs {
        match layer[pr.node.0] {
            None => {
                layer[pr.node.0] = Some(1);
                queue.push(pr.node);
            }
            Some(1) => {} // several network inputs on the same node is fine
            Some(_) => unreachable!("input node already at deeper layer before BFS"),
        }
    }
    // BFS; since edges strictly increase the layer, a cycle would force a
    // node's layer to exceed the node count.
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let lu = layer[u.0].expect("queued node has a layer");
        if lu > nodes.len() {
            return Err(TopologyError::Cyclic);
        }
        for out in nodes[u.0].outputs.iter().flatten() {
            if let WireEnd::Node { node: v, .. } = *out {
                match layer[v.0] {
                    None => {
                        layer[v.0] = Some(lu + 1);
                        queue.push(v);
                    }
                    Some(lv) if lv == lu + 1 => {}
                    Some(lv) => {
                        // Re-visiting at a *greater* depth means either a
                        // cycle or unequal path lengths. Distinguish by
                        // bounding: keep relaxing; if depth exceeds the
                        // node count it is a cycle, otherwise the paths
                        // are unequal.
                        if lu + 1 > nodes.len() {
                            return Err(TopologyError::Cyclic);
                        }
                        return Err(TopologyError::NotUniform {
                            detail: format!(
                                "node {v} reachable at distances {} and {}",
                                lv,
                                lu + 1
                            ),
                        });
                    }
                }
            }
        }
    }
    let mut out = Vec::with_capacity(nodes.len());
    for (i, l) in layer.iter().enumerate() {
        match l {
            Some(l) => out.push(*l),
            None => {
                return Err(TopologyError::NotUniform {
                    detail: format!("node n{i} is not reachable from any input"),
                })
            }
        }
    }
    Ok(out)
}

/// Checks that all counters hang off last-layer nodes (equal-length
/// paths to outputs) and every input node is at layer 1. Returns the
/// network depth `h` = number of links from an input node to a counter,
/// which equals the number of balancer layers.
fn check_uniformity(
    nodes: &[Node],
    layers: &[usize],
    _output_width: usize,
) -> Result<usize, TopologyError> {
    let depth = *layers.iter().max().expect("at least one node");
    for (i, n) in nodes.iter().enumerate() {
        let l = layers[i];
        for out in n.outputs.iter().flatten() {
            match *out {
                WireEnd::Counter { index } => {
                    if l != depth {
                        return Err(TopologyError::NotUniform {
                            detail: format!(
                                "counter {index} attached to node n{i} at layer {l}, \
                                 but the deepest layer is {depth}"
                            ),
                        });
                    }
                }
                WireEnd::Node { .. } => {
                    if l == depth {
                        return Err(TopologyError::NotUniform {
                            detail: format!(
                                "node n{i} at the deepest layer {depth} feeds another node"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(depth)
}

/// An immutable, validated balancing-network wiring graph.
///
/// See the [module documentation](self) for the invariants a `Topology`
/// upholds. Use [`crate::router::SequentialRouter`] to actually route
/// tokens, or the timed executor in the `cnet-timing` crate for timed
/// executions.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    inputs: Vec<PortRef>,
    output_width: usize,
    node_layer: Vec<usize>,
    layer_nodes: Vec<Vec<NodeId>>,
    depth: usize,
}

impl Topology {
    /// The number of network inputs `v` (ports on which tokens enter).
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.inputs.len()
    }

    /// The number of output counters `w`.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// The network depth `h`: the number of links between an input node
    /// and an output counter (equivalently, the number of balancer
    /// layers).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The number of balancing nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Builds `count` equal bitonic networks of output width `width` —
    /// the shard array behind a sharded counter frontend, in one call
    /// instead of hand-built narrow nets at every use site.
    ///
    /// Returns [`TopologyError::NoShards`] when `count == 0` and
    /// [`TopologyError::WidthNotPowerOfTwo`] unless `width` is a power
    /// of two `>= 2` (each shard is a full counting network of its
    /// own).
    ///
    /// # Example
    ///
    /// ```
    /// // four width-4 shards race one width-16 network at equal
    /// // total width
    /// let shards = cnet_topology::Topology::shards(4, 4)?;
    /// assert_eq!(shards.len(), 4);
    /// assert_eq!(shards.iter().map(|t| t.output_width()).sum::<usize>(), 16);
    /// # Ok::<(), cnet_topology::TopologyError>(())
    /// ```
    pub fn shards(width: usize, count: usize) -> Result<Vec<Topology>, TopologyError> {
        if count == 0 {
            return Err(TopologyError::NoShards);
        }
        (0..count)
            .map(|_| crate::constructions::bitonic(width))
            .collect()
    }

    /// The 1-based layer of `node` (Definition: layer `i` holds the
    /// nodes at distance `i - 1` links from the inputs).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    #[must_use]
    pub fn layer_of(&self, node: NodeId) -> usize {
        self.node_layer[node.0]
    }

    /// The nodes of layer `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or greater than [`Self::depth`].
    #[must_use]
    pub fn layer(&self, layer: usize) -> &[NodeId] {
        &self.layer_nodes[layer - 1]
    }

    /// The `(node, in_port)` pair behind network input `x_input`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= input_width()`.
    #[must_use]
    pub fn input(&self, input: usize) -> PortRef {
        self.inputs[input]
    }

    /// Fan-in of `node`.
    #[must_use]
    pub fn fan_in(&self, node: NodeId) -> usize {
        self.nodes[node.0].fan_in
    }

    /// Fan-out of `node`.
    #[must_use]
    pub fn fan_out(&self, node: NodeId) -> usize {
        self.nodes[node.0].fan_out
    }

    /// Where output `port` of `node` is wired.
    ///
    /// # Panics
    ///
    /// Panics if the node or port is out of range.
    #[must_use]
    pub fn output_wire(&self, node: NodeId, port: usize) -> WireEnd {
        self.nodes[node.0].outputs[port].expect("finalized topology has no dangling outputs")
    }

    /// Iterates over all node ids in layer order (layer 1 first).
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.layer_nodes.iter().flatten().copied()
    }

    /// Renders the network in Graphviz DOT format (for debugging and
    /// documentation).
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph counting_network {\n  rankdir=LR;\n");
        for (i, _) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                s,
                "  n{i} [shape=box,label=\"n{i}\\nL{}\"];",
                self.node_layer[i]
            );
        }
        for c in 0..self.output_width {
            let _ = writeln!(s, "  c{c} [shape=circle,label=\"Y{c}\"];");
        }
        for (x, pr) in self.inputs.iter().enumerate() {
            let _ = writeln!(s, "  x{x} [shape=plaintext,label=\"x{x}\"];");
            let _ = writeln!(s, "  x{x} -> n{};", pr.node.0);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for (p, out) in n.outputs.iter().enumerate() {
                match out.expect("finalized") {
                    WireEnd::Node { node, port } => {
                        let _ = writeln!(s, "  n{i} -> n{} [label=\"{p}->{port}\"];", node.0);
                    }
                    WireEnd::Counter { index } => {
                        let _ = writeln!(s, "  n{i} -> c{index} [label=\"{p}\"];");
                    }
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_balancer() -> Topology {
        let mut b = TopologyBuilder::new();
        let n = b.add_node(2, 2);
        b.add_input(n, 0).unwrap();
        b.add_input(n, 1).unwrap();
        b.connect_counter(n, 0, 0).unwrap();
        b.connect_counter(n, 1, 1).unwrap();
        b.finalize().unwrap()
    }

    #[test]
    fn shards_builds_equal_validated_networks() {
        let shards = Topology::shards(4, 4).unwrap();
        assert_eq!(shards.len(), 4);
        for t in &shards {
            assert_eq!(t.output_width(), 4);
            assert_eq!(t.input_width(), 4);
            assert_eq!(t.depth(), 3); // bitonic(4)
        }
        // a single shard is just the plain construction
        let one = Topology::shards(16, 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].output_width(), 16);
    }

    #[test]
    fn shards_rejects_invalid_arguments() {
        assert_eq!(Topology::shards(4, 0).unwrap_err(), TopologyError::NoShards);
        assert_eq!(
            Topology::shards(3, 2).unwrap_err(),
            TopologyError::WidthNotPowerOfTwo { width: 3 }
        );
        assert_eq!(
            Topology::shards(1, 2).unwrap_err(),
            TopologyError::WidthNotPowerOfTwo { width: 1 }
        );
    }

    #[test]
    fn single_balancer_shape() {
        let t = single_balancer();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.input_width(), 2);
        assert_eq!(t.output_width(), 2);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.layer(1).len(), 1);
        assert_eq!(t.layer_of(NodeId(0)), 1);
    }

    #[test]
    fn two_layer_network() {
        // two balancers in series on 2 wires
        let mut b = TopologyBuilder::new();
        let a = b.add_node(2, 2);
        let c = b.add_node(2, 2);
        b.add_input(a, 0).unwrap();
        b.add_input(a, 1).unwrap();
        b.connect(a, 0, c, 0).unwrap();
        b.connect(a, 1, c, 1).unwrap();
        b.connect_counter(c, 0, 0).unwrap();
        b.connect_counter(c, 1, 1).unwrap();
        let t = b.finalize().unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.layer_of(a), 1);
        assert_eq!(t.layer_of(c), 2);
        assert_eq!(t.output_wire(a, 0), WireEnd::Node { node: c, port: 0 });
    }

    #[test]
    fn dangling_output_rejected() {
        let mut b = TopologyBuilder::new();
        let n = b.add_node(2, 2);
        b.add_input(n, 0).unwrap();
        b.add_input(n, 1).unwrap();
        b.connect_counter(n, 0, 0).unwrap();
        // output port 1 left unwired
        assert!(matches!(
            b.finalize(),
            Err(TopologyError::UnwiredCounter { .. }) | Err(TopologyError::UnwiredOutput { .. })
        ));
    }

    #[test]
    fn undriven_input_rejected() {
        let mut b = TopologyBuilder::new();
        let n = b.add_node(2, 2);
        b.add_input(n, 0).unwrap();
        b.connect_counter(n, 0, 0).unwrap();
        b.connect_counter(n, 1, 1).unwrap();
        assert_eq!(
            b.finalize().unwrap_err(),
            TopologyError::UndrivenInput {
                node: NodeId(0),
                port: 1
            }
        );
    }

    #[test]
    fn double_drive_rejected() {
        let mut b = TopologyBuilder::new();
        let n = b.add_node(2, 2);
        b.add_input(n, 0).unwrap();
        assert_eq!(
            b.add_input(n, 0).unwrap_err(),
            TopologyError::InputAlreadyDriven { node: n, port: 0 }
        );
    }

    #[test]
    fn counter_double_drive_rejected() {
        let mut b = TopologyBuilder::new();
        let n = b.add_node(2, 2);
        b.add_input(n, 0).unwrap();
        b.add_input(n, 1).unwrap();
        b.connect_counter(n, 0, 0).unwrap();
        assert_eq!(
            b.connect_counter(n, 1, 0).unwrap_err(),
            TopologyError::CounterAlreadyDriven { counter: 0 }
        );
    }

    #[test]
    fn unequal_paths_rejected() {
        // a -> c directly on one wire, a -> b -> c on the other: not uniform
        let mut bld = TopologyBuilder::new();
        let a = bld.add_node(2, 2);
        let b = bld.add_node(1, 1);
        let c = bld.add_node(2, 2);
        bld.add_input(a, 0).unwrap();
        bld.add_input(a, 1).unwrap();
        bld.connect(a, 0, c, 0).unwrap();
        bld.connect(a, 1, b, 0).unwrap();
        bld.connect(b, 0, c, 1).unwrap();
        bld.connect_counter(c, 0, 0).unwrap();
        bld.connect_counter(c, 1, 1).unwrap();
        assert!(matches!(
            bld.finalize(),
            Err(TopologyError::NotUniform { .. })
        ));
    }

    #[test]
    fn counter_on_shallow_layer_rejected() {
        // first-layer node feeds a counter while another path is longer
        let mut bld = TopologyBuilder::new();
        let a = bld.add_node(2, 2);
        let b = bld.add_node(1, 1);
        bld.add_input(a, 0).unwrap();
        bld.add_input(a, 1).unwrap();
        bld.connect(a, 0, b, 0).unwrap();
        bld.connect_counter(a, 1, 0).unwrap();
        bld.connect_counter(b, 0, 1).unwrap();
        assert!(matches!(
            bld.finalize(),
            Err(TopologyError::NotUniform { .. })
        ));
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            TopologyBuilder::new().finalize().unwrap_err(),
            TopologyError::NoInputs
        );
    }

    #[test]
    fn unreachable_node_rejected() {
        let mut bld = TopologyBuilder::new();
        let a = bld.add_node(1, 1);
        let b = bld.add_node(1, 1);
        bld.add_input(a, 0).unwrap();
        bld.connect_counter(a, 0, 0).unwrap();
        // node b: drive its input from... nothing is possible without a
        // wire, so wire b to a counter and its input from a network input
        // is the only way; instead leave it undriven -> UndrivenInput
        bld.connect_counter(b, 0, 1).unwrap();
        assert!(matches!(
            bld.finalize(),
            Err(TopologyError::UndrivenInput { .. })
        ));
    }

    #[test]
    fn dot_output_mentions_all_parts() {
        let t = single_balancer();
        let dot = t.to_dot();
        assert!(dot.contains("n0"));
        assert!(dot.contains("c0"));
        assert!(dot.contains("c1"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
    }

    #[test]
    fn iter_nodes_in_layer_order() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node(2, 2);
        let c = b.add_node(2, 2);
        b.add_input(a, 0).unwrap();
        b.add_input(a, 1).unwrap();
        b.connect(a, 0, c, 0).unwrap();
        b.connect(a, 1, c, 1).unwrap();
        b.connect_counter(c, 0, 0).unwrap();
        b.connect_counter(c, 1, 1).unwrap();
        let t = b.finalize().unwrap();
        let ids: Vec<NodeId> = t.iter_nodes().collect();
        assert_eq!(ids, vec![a, c]);
    }
}
