//! Composable interconnect-fabric descriptions.
//!
//! The simulator's original machine model priced every wire as one
//! latency draw (`link_cost + uniform jitter`). A [`Fabric`] replaces
//! that flat wire with a small composable description of the
//! interconnect between balancers:
//!
//! * a [`LinkSpec`] — propagation delay plus a finite drop-tail egress
//!   queue with a configurable service rate and random loss;
//! * a [`SwitchSpec`] — the shared queue of a switch that multiplexes
//!   many links through one egress port;
//! * a [`FabricShape`] — how links and switches compose into a
//!   topology: one big switch, a switch per network stage, a two-tier
//!   spine, or a full mesh of private wires;
//! * a [`RetryPolicy`] — what a sender does when the fabric refuses a
//!   token: capped exponential backoff, either after an immediate NACK
//!   (backpressure) or after a detection timeout (silent drop).
//!
//! This crate holds only the *description* and its validation; the
//! dynamics (queue occupancy, loss draws, retry scheduling) live in
//! the simulator, which interprets the description against its event
//! queue. The legacy wire is the *degenerate* fabric — one big switch,
//! unbounded zero-service queues, zero loss — and the simulator is
//! required (and golden-trace tested) to reproduce the pre-fabric
//! event stream exactly in that case.

use std::error::Error;
use std::fmt;

use serde::{impl_serde_struct, Deserialize, Error as SerdeError, Serialize, Value};

/// One wire's timing and queueing model.
///
/// Tokens traversing a link first pay `delay` (plus a uniform draw in
/// `[0, jitter]` per transmission attempt), then enter the egress
/// queue of the destination, which serves one token per `service`
/// cycles and holds at most `capacity` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Propagation cycles per traversal (the legacy `link_cost`).
    pub delay: u64,
    /// Uniform random extra cycles per transmission attempt (the
    /// legacy `link_jitter`); retransmissions re-draw it.
    pub jitter: u64,
    /// Cycles the destination egress queue spends serving one token.
    /// `0` is an infinitely fast port: tokens pass straight through.
    pub service: u64,
    /// Drop-tail queue slots at the destination egress (holder
    /// included); `0` means unbounded.
    pub capacity: u32,
    /// Random loss per transmission attempt, in tokens per million.
    pub loss_per_million: u32,
}

impl_serde_struct!(LinkSpec {
    delay,
    jitter,
    service,
    capacity,
    loss_per_million,
});

/// The shared egress queue of a switch stage.
///
/// Switches multiplex many links through one queue, so their service
/// rate and capacity are what turn independent wires into a shared
/// bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Cycles the switch egress spends serving one token.
    pub service: u64,
    /// Drop-tail slots in the switch egress queue (holder included);
    /// `0` means unbounded.
    pub capacity: u32,
}

impl_serde_struct!(SwitchSpec { service, capacity });

/// What a sender does when the fabric refuses a token (a lost
/// transmission or a full queue).
///
/// Attempt `k` (1-based) retries after `min(backoff_base << (k-1),
/// backoff_cap)` cycles; without backpressure a full-queue drop is
/// only *detected* after an additional `backoff_cap` timeout. After
/// `max_attempts` failures the token is force-delivered (and counted)
/// so no workload can livelock on an unlucky loss stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First retry delay, in cycles.
    pub backoff_base: u64,
    /// Upper bound on the exponential backoff, in cycles.
    pub backoff_cap: u64,
    /// Failed attempts per hop before the token is force-delivered.
    pub max_attempts: u32,
}

impl_serde_struct!(RetryPolicy {
    backoff_base,
    backoff_cap,
    max_attempts,
});

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff_base: 64,
            backoff_cap: 2048,
            max_attempts: 16,
        }
    }
}

impl RetryPolicy {
    /// The capped exponential backoff before retry attempt `attempt`
    /// (1-based). Saturating, so absurd parameters cannot overflow.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        let raw = if self.backoff_base == 0 {
            0
        } else if shift > self.backoff_base.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base << shift
        };
        raw.min(self.backoff_cap)
    }
}

/// How links and switches compose into an interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricShape {
    /// Every wire lands on one central switch: all traffic shares the
    /// switch queue, then fans out through per-destination link
    /// queues. The degenerate (legacy-wire) shape.
    #[default]
    OneBigSwitch,
    /// One switch per network stage (layer): tokens bound for layer
    /// `l` share that layer's switch queue before their destination's
    /// link queue — contention mirrors the network's own structure.
    PerStage,
    /// A leaf/spine fabric: each wire is spread (deterministically,
    /// by route index) over `spines` spine switches, then lands in the
    /// destination link queue. More spines, less shared contention.
    TwoTier {
        /// Number of spine switches (at least 1).
        spines: u32,
    },
    /// A dedicated wire per (node output → destination) pair: private
    /// link queues, no shared switch queue at all.
    Mesh,
}

// `FabricShape` has a struct variant, so serde is hand-written like
// `Placement`'s: `"OneBigSwitch"`, `"PerStage"`, `"Mesh"`, or
// `{"TwoTier": {"spines": …}}`.
impl Serialize for FabricShape {
    fn to_value(&self) -> Value {
        match self {
            FabricShape::OneBigSwitch => Value::Str("OneBigSwitch".to_string()),
            FabricShape::PerStage => Value::Str("PerStage".to_string()),
            FabricShape::Mesh => Value::Str("Mesh".to_string()),
            FabricShape::TwoTier { spines } => Value::Object(vec![(
                "TwoTier".to_string(),
                Value::Object(vec![("spines".to_string(), spines.to_value())]),
            )]),
        }
    }
}

impl Deserialize for FabricShape {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) if s == "OneBigSwitch" => Ok(FabricShape::OneBigSwitch),
            Value::Str(s) if s == "PerStage" => Ok(FabricShape::PerStage),
            Value::Str(s) if s == "Mesh" => Ok(FabricShape::Mesh),
            Value::Object(_) => {
                let tier = v
                    .get("TwoTier")
                    .ok_or_else(|| SerdeError::new("expected a `TwoTier` fabric shape object"))?;
                Ok(FabricShape::TwoTier {
                    spines: tier.field("spines")?,
                })
            }
            other => Err(SerdeError::new(format!("unknown FabricShape: {other:?}"))),
        }
    }
}

/// The full interconnect description: a shape composed from one link
/// model, one switch model, and a retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fabric {
    /// How the queues compose.
    pub shape: FabricShape,
    /// Per-destination link model (every wire shares it).
    pub link: LinkSpec,
    /// Shared switch-stage model (ignored by [`FabricShape::Mesh`]).
    pub switch: SwitchSpec,
    /// `true`: a full queue NACKs and the sender retries after capped
    /// exponential backoff. `false`: a full queue silently drops and
    /// the sender retransmits only after a `backoff_cap` detection
    /// timeout on top of the backoff.
    pub backpressure: bool,
    /// Loss/congestion retry behaviour.
    pub retry: RetryPolicy,
}

impl_serde_struct!(Fabric {
    shape,
    link,
    switch,
    backpressure,
    retry,
});

impl Default for Fabric {
    fn default() -> Self {
        Fabric::degenerate(0, 0)
    }
}

impl Fabric {
    /// The degenerate fabric equivalent to the legacy flat wire: one
    /// big switch, unbounded zero-service queues, zero loss. The
    /// simulator reproduces the pre-fabric event stream exactly for
    /// this shape.
    #[must_use]
    pub fn degenerate(delay: u64, jitter: u64) -> Self {
        Fabric {
            shape: FabricShape::OneBigSwitch,
            link: LinkSpec {
                delay,
                jitter,
                service: 0,
                capacity: 0,
                loss_per_million: 0,
            },
            switch: SwitchSpec {
                service: 0,
                capacity: 0,
            },
            backpressure: false,
            retry: RetryPolicy::default(),
        }
    }

    /// Whether this fabric is behaviourally the legacy flat wire: no
    /// queueing, no loss, nothing for the retry policy to do. The
    /// simulator takes the exact pre-fabric code path (same RNG draw
    /// order, same events) when this holds.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.shape == FabricShape::OneBigSwitch
            && self.link.service == 0
            && self.link.capacity == 0
            && self.link.loss_per_million == 0
            && self.switch.service == 0
            && self.switch.capacity == 0
    }

    /// Checks the description for parameters with no defined dynamics.
    ///
    /// # Errors
    ///
    /// Returns the [`FabricError`] naming the degenerate field.
    pub fn validate(&self) -> Result<(), FabricError> {
        if self.link.loss_per_million > 1_000_000 {
            return Err(FabricError::LossOutOfRange {
                loss_per_million: self.link.loss_per_million,
            });
        }
        if self.link.capacity > 0 && self.link.service == 0 {
            return Err(FabricError::BoundedZeroService { stage: "link" });
        }
        if self.switch.capacity > 0 && self.switch.service == 0 {
            return Err(FabricError::BoundedZeroService { stage: "switch" });
        }
        if self.retry.max_attempts == 0 {
            return Err(FabricError::ZeroAttempts);
        }
        if self.retry.backoff_cap < self.retry.backoff_base {
            return Err(FabricError::BackoffCapBelowBase {
                base: self.retry.backoff_base,
                cap: self.retry.backoff_cap,
            });
        }
        if let FabricShape::TwoTier { spines: 0 } = self.shape {
            return Err(FabricError::ZeroSpines);
        }
        Ok(())
    }
}

/// A fabric description with no defined dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// `loss_per_million` exceeds one million: more than every token
    /// lost.
    LossOutOfRange {
        /// The offending rate.
        loss_per_million: u32,
    },
    /// A queue with finite capacity but zero service time: it can
    /// never be observed full, so the bound is a lie.
    BoundedZeroService {
        /// Which spec carried the bound (`"link"` or `"switch"`).
        stage: &'static str,
    },
    /// `max_attempts == 0`: a token that may never transmit.
    ZeroAttempts,
    /// `backoff_cap < backoff_base`: the first retry already exceeds
    /// the cap.
    BackoffCapBelowBase {
        /// The configured base.
        base: u64,
        /// The configured cap.
        cap: u64,
    },
    /// `TwoTier { spines: 0 }`: a spine tier with no switches.
    ZeroSpines,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::LossOutOfRange { loss_per_million } => write!(
                f,
                "link loss_per_million must be <= 1_000_000, got {loss_per_million}"
            ),
            FabricError::BoundedZeroService { stage } => write!(
                f,
                "{stage} capacity is bounded but its service time is 0 \
                 (an infinitely fast queue can never fill)"
            ),
            FabricError::ZeroAttempts => {
                write!(f, "retry max_attempts must be >= 1")
            }
            FabricError::BackoffCapBelowBase { base, cap } => write!(
                f,
                "retry backoff_cap ({cap}) must be >= backoff_base ({base})"
            ),
            FabricError::ZeroSpines => {
                write!(f, "TwoTier fabric requires at least one spine switch")
            }
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_fabric_is_degenerate() {
        let f = Fabric::degenerate(20, 200);
        assert!(f.is_degenerate());
        assert!(f.validate().is_ok());
        assert_eq!(f.link.delay, 20);
        assert_eq!(f.link.jitter, 200);
    }

    #[test]
    fn any_queueing_parameter_leaves_the_degenerate_case() {
        let base = Fabric::degenerate(20, 200);
        for f in [
            Fabric {
                link: LinkSpec {
                    loss_per_million: 1,
                    ..base.link
                },
                ..base
            },
            Fabric {
                link: LinkSpec {
                    service: 1,
                    ..base.link
                },
                ..base
            },
            Fabric {
                switch: SwitchSpec {
                    service: 5,
                    capacity: 0,
                },
                ..base
            },
            Fabric {
                shape: FabricShape::Mesh,
                ..base
            },
        ] {
            assert!(!f.is_degenerate(), "{f:?}");
        }
    }

    #[test]
    fn validation_rejects_undefined_dynamics() {
        let base = Fabric::degenerate(0, 0);
        let bad_loss = Fabric {
            link: LinkSpec {
                loss_per_million: 1_000_001,
                ..base.link
            },
            ..base
        };
        assert!(matches!(
            bad_loss.validate(),
            Err(FabricError::LossOutOfRange { .. })
        ));
        let bad_bound = Fabric {
            link: LinkSpec {
                capacity: 4,
                service: 0,
                ..base.link
            },
            ..base
        };
        assert!(matches!(
            bad_bound.validate(),
            Err(FabricError::BoundedZeroService { stage: "link" })
        ));
        let bad_retry = Fabric {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..base
        };
        assert_eq!(bad_retry.validate(), Err(FabricError::ZeroAttempts));
        let bad_cap = Fabric {
            retry: RetryPolicy {
                backoff_base: 100,
                backoff_cap: 10,
                max_attempts: 3,
            },
            ..base
        };
        assert!(matches!(
            bad_cap.validate(),
            Err(FabricError::BackoffCapBelowBase { .. })
        ));
        let bad_spines = Fabric {
            shape: FabricShape::TwoTier { spines: 0 },
            ..base
        };
        assert_eq!(bad_spines.validate(), Err(FabricError::ZeroSpines));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy {
            backoff_base: 10,
            backoff_cap: 100,
            max_attempts: 8,
        };
        assert_eq!(r.backoff(1), 10);
        assert_eq!(r.backoff(2), 20);
        assert_eq!(r.backoff(3), 40);
        assert_eq!(r.backoff(4), 80);
        assert_eq!(r.backoff(5), 100);
        assert_eq!(r.backoff(200), 100);
        // saturation, not overflow, on absurd parameters
        let huge = RetryPolicy {
            backoff_base: u64::MAX / 2,
            backoff_cap: u64::MAX,
            max_attempts: u32::MAX,
        };
        assert_eq!(huge.backoff(u32::MAX), u64::MAX);
    }

    #[test]
    fn fabric_serde_round_trip() {
        let shapes = [
            FabricShape::OneBigSwitch,
            FabricShape::PerStage,
            FabricShape::TwoTier { spines: 4 },
            FabricShape::Mesh,
        ];
        for shape in shapes {
            let f = Fabric {
                shape,
                link: LinkSpec {
                    delay: 20,
                    jitter: 200,
                    service: 8,
                    capacity: 16,
                    loss_per_million: 10_000,
                },
                switch: SwitchSpec {
                    service: 4,
                    capacity: 64,
                },
                backpressure: true,
                retry: RetryPolicy::default(),
            };
            let text = serde::json::to_string(&f.to_value());
            let back = Fabric::from_value(&serde::json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn shape_rejects_unknown_encodings() {
        assert!(FabricShape::from_value(&Value::Str("Torus".to_string())).is_err());
        assert!(FabricShape::from_value(&Value::Uint(3)).is_err());
    }
}
