//! Exact counting-network verification via the sorting equivalence.
//!
//! Aspnes, Herlihy, and Shavit proved that a balancing network is a
//! *counting* network if and only if its isomorphic comparator network
//! is a *sorting* network; by the 0-1 principle, that holds iff it
//! sorts every 0-1 input. For a layered pair network of width `w` this
//! gives an *exact* decision procedure with `2^w` trials — entirely
//! feasible for the widths used in tests and experiments.
//!
//! The mapping: a balancer's output 0 receives `ceil` of its tokens
//! (the step property favours lower-numbered outputs), so the isomorphic
//! comparator routes the **maximum** to the wire feeding the
//! lower-numbered counter. "Sorted" on the outputs therefore means
//! *non-increasing* in counter order — exactly the shape of a step.

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, WireEnd};

/// Why a topology cannot be checked by the 0-1 procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The procedure needs every node to be a 2-in/2-out balancer and
    /// the network to have equal input and output width (a "pair
    /// network"); this node is not.
    NotAPairNetwork {
        /// The offending node.
        node: NodeId,
    },
    /// `2^width` exceeds the given trial budget.
    TooWide {
        /// The network width.
        width: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NotAPairNetwork { node } => {
                write!(
                    f,
                    "node {node} is not a 2x2 balancer; the 0-1 check needs a pair network"
                )
            }
            VerifyError::TooWide { width } => {
                write!(f, "width {width} needs 2^{width} trials, over the budget")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<VerifyError> for TopologyError {
    fn from(e: VerifyError) -> Self {
        match e {
            VerifyError::NotAPairNetwork { .. } | VerifyError::TooWide { .. } => {
                TopologyError::NotUniform {
                    detail: e.to_string(),
                }
            }
        }
    }
}

/// The verdict of [`is_counting_network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountingVerdict {
    /// Every 0-1 input sorts: the network counts, in every execution.
    Counting,
    /// This 0-1 input (one bit per network input, index order) fails to
    /// sort — by the AHS equivalence the network is *not* a counting
    /// network.
    NotCounting {
        /// A witness 0-1 input vector.
        witness: Vec<u8>,
    },
}

impl CountingVerdict {
    /// `true` for [`CountingVerdict::Counting`].
    #[must_use]
    pub fn is_counting(&self) -> bool {
        matches!(self, CountingVerdict::Counting)
    }
}

/// Runs one 0-1 input through the comparator interpretation and
/// returns the output values in counter order.
fn comparator_pass(topology: &Topology, input: &[u8]) -> Result<Vec<u8>, VerifyError> {
    // current value on each node input port, filled layer by layer
    let mut node_in: Vec<Vec<Option<u8>>> = (0..topology.node_count())
        .map(|i| vec![None; topology.fan_in(NodeId(i))])
        .collect();
    let mut outputs: Vec<Option<u8>> = vec![None; topology.output_width()];

    for (x, &bit) in input.iter().enumerate() {
        let pr = topology.input(x);
        node_in[pr.node.index()][pr.port] = Some(bit);
    }
    for id in topology.iter_nodes() {
        if topology.fan_in(id) != 2 || topology.fan_out(id) != 2 {
            return Err(VerifyError::NotAPairNetwork { node: id });
        }
        let a = node_in[id.index()][0].expect("layer order fills inputs");
        let b = node_in[id.index()][1].expect("layer order fills inputs");
        // output 0 takes the ceiling of the tokens: route the max there
        let (hi, lo) = (a.max(b), a.min(b));
        for (port, v) in [(0usize, hi), (1usize, lo)] {
            match topology.output_wire(id, port) {
                WireEnd::Node {
                    node,
                    port: in_port,
                } => {
                    node_in[node.index()][in_port] = Some(v);
                }
                WireEnd::Counter { index } => outputs[index] = Some(v),
            }
        }
    }
    Ok(outputs
        .into_iter()
        .map(|v| v.expect("all outputs driven"))
        .collect())
}

/// Decides exactly whether a layered pair network is a counting
/// network, by checking that every 0-1 input sorts (non-increasing in
/// counter order).
///
/// # Errors
///
/// * [`VerifyError::NotAPairNetwork`] if some node is not 2×2 or the
///   input width differs from the output width.
/// * [`VerifyError::TooWide`] if `2^width` exceeds `max_trials`.
///
/// # Example
///
/// ```
/// use cnet_topology::{constructions, verify};
///
/// let net = constructions::bitonic(8)?;
/// assert!(verify::is_counting_network(&net, 1 << 20)?.is_counting());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn is_counting_network(
    topology: &Topology,
    max_trials: u64,
) -> Result<CountingVerdict, VerifyError> {
    let w = topology.input_width();
    if w != topology.output_width() {
        // a pair network preserves width by construction
        let first = topology.iter_nodes().next().expect("nonempty network");
        return Err(VerifyError::NotAPairNetwork { node: first });
    }
    if w >= 63 || (1u64 << w) > max_trials {
        return Err(VerifyError::TooWide { width: w });
    }
    for mask in 0..(1u64 << w) {
        let input: Vec<u8> = (0..w).map(|i| ((mask >> i) & 1) as u8).collect();
        let out = comparator_pass(topology, &input)?;
        if out.windows(2).any(|p| p[0] < p[1]) {
            return Ok(CountingVerdict::NotCounting { witness: input });
        }
    }
    Ok(CountingVerdict::Counting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions;
    use crate::random::random_layered;
    use crate::router::SequentialRouter;

    #[test]
    fn classic_constructions_are_counting() {
        for net in [
            constructions::single_balancer(),
            constructions::bitonic(4).unwrap(),
            constructions::bitonic(8).unwrap(),
            constructions::bitonic(16).unwrap(),
            constructions::periodic(4).unwrap(),
            constructions::periodic(8).unwrap(),
        ] {
            assert!(
                is_counting_network(&net, 1 << 20).unwrap().is_counting(),
                "a classic construction failed the 0-1 check"
            );
        }
    }

    #[test]
    fn a_single_block_is_not_counting() {
        // Block[8] alone is not a counting network (Periodic needs
        // log w of them)
        let net = constructions::block(8).unwrap();
        let verdict = is_counting_network(&net, 1 << 20).unwrap();
        assert!(!verdict.is_counting(), "one block must not count");
    }

    #[test]
    fn merger_alone_is_not_counting() {
        // Merger[w] merges two steps; on arbitrary inputs it fails
        let net = constructions::merger(8).unwrap();
        let verdict = is_counting_network(&net, 1 << 20).unwrap();
        assert!(!verdict.is_counting());
    }

    #[test]
    fn witnesses_translate_to_step_violations() {
        // For each non-counting random network the 0-1 witness maps to
        // a token distribution that breaks the step property: feed
        // tokens proportional to the witness bits scaled up.
        let mut cross_checked = 0;
        for seed in 0..12u64 {
            let net = random_layered(8, 3, seed).unwrap();
            if let CountingVerdict::NotCounting { witness } =
                is_counting_network(&net, 1 << 20).unwrap()
            {
                // the 0-1 principle's constructive direction: a failing
                // binary input corresponds to a threshold distribution;
                // empirically probing distributions derived from the
                // witness finds a quiescent step violation
                let mut found = false;
                for scale in 1..=8u64 {
                    let mut r = SequentialRouter::new(&net);
                    for (x, &bit) in witness.iter().enumerate() {
                        let tokens = if bit == 1 { scale + 1 } else { scale };
                        for _ in 0..tokens {
                            r.route(x).unwrap();
                        }
                    }
                    if !r.output_counts().is_step() {
                        found = true;
                        break;
                    }
                }
                if found {
                    cross_checked += 1;
                }
            }
        }
        assert!(
            cross_checked >= 3,
            "witnesses should translate to concrete step violations \
             (got {cross_checked})"
        );
    }

    #[test]
    fn agreement_with_randomized_step_probing() {
        // whenever randomized probing finds a step violation, the exact
        // check must say NotCounting (the converse needs the right
        // distribution, checked above)
        for seed in 0..10u64 {
            let net = random_layered(6, 3, seed).unwrap();
            let mut probed_broken = false;
            for burst in 1..12u64 {
                let mut r = SequentialRouter::new(&net);
                for _ in 0..burst * 3 {
                    r.route(0).unwrap();
                }
                if !r.output_counts().is_step() {
                    probed_broken = true;
                    break;
                }
            }
            if probed_broken {
                assert!(
                    !is_counting_network(&net, 1 << 20).unwrap().is_counting(),
                    "probing found a violation but the 0-1 check disagreed (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn non_pair_networks_rejected() {
        let tree = constructions::counting_tree(4).unwrap();
        assert!(matches!(
            is_counting_network(&tree, 1 << 20),
            Err(VerifyError::NotAPairNetwork { .. })
        ));
    }

    #[test]
    fn width_budget_enforced() {
        let net = constructions::bitonic(16).unwrap();
        assert!(matches!(
            is_counting_network(&net, 100),
            Err(VerifyError::TooWide { width: 16 })
        ));
    }
}

/// Exact counting check over all token distributions with at most
/// `max_total` tokens, for *any* topology (trees and d-ary networks
/// included, where the 0-1 pair-network procedure does not apply).
///
/// Soundness rests on a structural fact of deterministic round-robin
/// balancers: the quiescent per-counter totals depend only on how many
/// tokens entered each input, not on the interleaving — each
/// balancer's output counts are a function of its total arrivals alone.
/// Routing each distribution sequentially therefore covers every
/// asynchronous execution's quiescent state.
///
/// Returns the first distribution (token count per input) whose
/// quiescent counts violate the step property, or `None` if all
/// distributions up to the budget pass.
#[must_use]
pub fn probe_counting(topology: &Topology, max_total: u64) -> Option<Vec<u64>> {
    let v = topology.input_width();
    let mut distribution = vec![0u64; v];
    probe_rec(topology, &mut distribution, 0, max_total)
}

fn probe_rec(
    topology: &Topology,
    distribution: &mut Vec<u64>,
    index: usize,
    remaining: u64,
) -> Option<Vec<u64>> {
    if index == distribution.len() {
        let mut router = crate::router::SequentialRouter::new(topology);
        for (x, &count) in distribution.iter().enumerate() {
            for _ in 0..count {
                router.route(x).expect("valid input");
            }
        }
        if router.output_counts().is_step() {
            return None;
        }
        return Some(distribution.clone());
    }
    for take in 0..=remaining {
        distribution[index] = take;
        if let Some(w) = probe_rec(topology, distribution, index + 1, remaining - take) {
            return Some(w);
        }
    }
    distribution[index] = 0;
    None
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use crate::constructions;
    use crate::random::random_layered;

    #[test]
    fn trees_pass_bounded_probing() {
        for net in [
            constructions::counting_tree(8).unwrap(),
            constructions::counting_tree_d(9, 3).unwrap(),
        ] {
            assert_eq!(probe_counting(&net, 30), None);
        }
    }

    #[test]
    fn pair_constructions_pass_bounded_probing() {
        let net = constructions::bitonic(4).unwrap();
        assert_eq!(probe_counting(&net, 9), None);
        let net = constructions::periodic(4).unwrap();
        assert_eq!(probe_counting(&net, 9), None);
    }

    #[test]
    fn probe_agrees_with_the_01_check_on_random_networks() {
        for seed in 0..8u64 {
            let net = random_layered(4, 2, seed).unwrap();
            let exact = is_counting_network(&net, 1 << 20).unwrap().is_counting();
            let probed_ok = probe_counting(&net, 8).is_none();
            // probing with a modest budget must never contradict the
            // exact check in the "broken" direction
            if !probed_ok {
                assert!(
                    !exact,
                    "probe found a violation the 0-1 check missed (seed {seed})"
                );
            }
            // and for these tiny widths the budget is big enough to
            // agree exactly
            assert_eq!(exact, probed_ok, "seed {seed}");
        }
    }

    #[test]
    fn witness_distribution_is_reported() {
        let net = constructions::block(4).unwrap();
        let witness = probe_counting(&net, 8).expect("a lone block does not count");
        assert_eq!(witness.len(), 4);
        assert!(witness.iter().sum::<u64>() <= 8);
    }
}
