//! Random uniform *balancing* networks.
//!
//! A random layered network — each layer pairs the wires into 2×2
//! balancers under a random permutation — is always a valid uniform
//! balancing network, but it is almost never a *counting* network: the
//! quiescent step property usually fails. That contrast is exactly
//! what makes these networks useful test inputs:
//!
//! * the [`Topology`] validator must accept them (they satisfy every
//!   structural invariant);
//! * token-conservation and knowledge-propagation (Lemma 3.2) hold on
//!   them, because those need only the balancing property;
//! * the counting-only results (Lemma 3.1, the step property, the
//!   linearizability guarantees) must be *expected to fail* on them —
//!   negative tests that pin down which hypotheses each theorem
//!   actually uses.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, TopologyBuilder};

/// Builds a random layered width-`width`, depth-`depth` balancing
/// network: each layer pairs all wires under a seeded random
/// permutation.
///
/// The result is always uniform and valid; it is a counting network
/// only by (vanishing) luck.
///
/// # Errors
///
/// Returns [`TopologyError::WidthNotPowerOfTwo`] if `width` is odd or
/// less than 2 (pairing needs an even number of wires; any even width
/// works, the error variant just reports the offending width), and
/// [`TopologyError::NoOutputs`]-style builder errors never occur.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn random_layered(width: usize, depth: usize, seed: u64) -> Result<Topology, TopologyError> {
    if width < 2 || !width.is_multiple_of(2) {
        return Err(TopologyError::WidthNotPowerOfTwo { width });
    }
    assert!(depth > 0, "a network needs at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();

    // producer of each wire: None = network input
    let mut producer: Vec<Option<(NodeId, usize)>> = vec![None; width];
    let mut first_layer_consumer: Vec<Option<(NodeId, usize)>> = vec![None; width];
    for layer in 0..depth {
        let mut wires: Vec<usize> = (0..width).collect();
        wires.shuffle(&mut rng);
        let mut next_producer = producer.clone();
        for pair in wires.chunks(2) {
            let node = b.add_node(2, 2);
            for (port, &wire) in pair.iter().enumerate() {
                match producer[wire] {
                    Some((src, src_port)) => b.connect(src, src_port, node, port)?,
                    None => first_layer_consumer[wire] = Some((node, port)),
                }
                next_producer[wire] = Some((node, port));
            }
        }
        producer = next_producer;
        if layer == 0 {
            for consumer in &first_layer_consumer {
                let (node, port) = consumer.expect("all wires paired in layer 1");
                b.add_input(node, port)?;
            }
        }
    }
    for (k, p) in producer.iter().enumerate() {
        let (node, port) = p.expect("all wires produced");
        b.connect_counter(node, port, k)?;
    }
    b.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::SequentialRouter;
    use proptest::prelude::*;

    #[test]
    fn random_networks_are_valid_and_uniform() {
        for seed in 0..10 {
            let net = random_layered(8, 4, seed).unwrap();
            assert_eq!(net.depth(), 4);
            assert_eq!(net.input_width(), 8);
            assert_eq!(net.output_width(), 8);
            assert_eq!(net.node_count(), 4 * 4);
        }
    }

    #[test]
    fn odd_or_tiny_width_rejected() {
        assert!(random_layered(3, 2, 0).is_err());
        assert!(random_layered(0, 2, 0).is_err());
        assert!(random_layered(1, 2, 0).is_err());
        assert!(
            random_layered(6, 2, 0).is_ok(),
            "even non-power widths are fine"
        );
    }

    #[test]
    fn same_seed_same_network() {
        let a = random_layered(8, 3, 42).unwrap();
        let b = random_layered(8, 3, 42).unwrap();
        assert_eq!(a.to_dot(), b.to_dot());
        let c = random_layered(8, 3, 43).unwrap();
        assert_ne!(a.to_dot(), c.to_dot());
    }

    #[test]
    fn tokens_are_conserved_even_without_counting() {
        let net = random_layered(8, 5, 7).unwrap();
        let mut r = SequentialRouter::new(&net);
        r.route_round_robin(100).unwrap();
        assert_eq!(r.output_counts().total(), 100);
    }

    /// Most random networks are *not* counting networks: some token
    /// distribution breaks the step property. (Checked over several
    /// seeds — each individual seed could be lucky, all of them being
    /// lucky is astronomically unlikely.)
    #[test]
    fn random_networks_usually_do_not_count() {
        let mut broken = 0;
        for seed in 0..8 {
            let net = random_layered(8, 3, seed).unwrap();
            let mut r = SequentialRouter::new(&net);
            // all tokens on one input is the classic breaker
            for _ in 0..13 {
                r.route(0).unwrap();
            }
            if !r.output_counts().is_step() {
                broken += 1;
            }
        }
        assert!(
            broken >= 4,
            "only {broken}/8 random networks failed to count"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Validation invariants hold for arbitrary shapes and seeds.
        #[test]
        fn arbitrary_random_networks_validate(
            half_width in 1usize..6,
            depth in 1usize..5,
            seed in 0u64..10_000,
        ) {
            let net = random_layered(2 * half_width, depth, seed).unwrap();
            prop_assert_eq!(net.depth(), depth);
            let mut r = SequentialRouter::new(&net);
            r.route_round_robin(30).unwrap();
            prop_assert_eq!(r.output_counts().total(), 30);
        }
    }
}
