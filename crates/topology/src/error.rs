use std::error::Error;
use std::fmt;

use crate::topology::NodeId;

/// Errors raised while constructing or using a balancing-network
/// [`Topology`](crate::Topology).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A width argument was not a power of two `>= 2`.
    WidthNotPowerOfTwo {
        /// The offending width.
        width: usize,
    },
    /// A node id referenced a node that does not exist.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
    },
    /// A port index was out of range for the node's fan-in/fan-out.
    PortOutOfRange {
        /// The node whose port was referenced.
        node: NodeId,
        /// The offending port index.
        port: usize,
        /// Number of ports of that kind on the node.
        available: usize,
    },
    /// An output port was wired more than once.
    OutputAlreadyWired {
        /// The node whose output port was re-wired.
        node: NodeId,
        /// The port that was already connected.
        port: usize,
    },
    /// An input port was driven by more than one wire or network input.
    InputAlreadyDriven {
        /// The node whose input port was re-driven.
        node: NodeId,
        /// The port that was already driven.
        port: usize,
    },
    /// An output counter was driven by more than one wire.
    ///
    /// The paper's counters have a single input each, so a counter index
    /// may be the target of exactly one node output.
    CounterAlreadyDriven {
        /// The counter index that was driven twice.
        counter: usize,
    },
    /// After building, some node input port was left undriven.
    UndrivenInput {
        /// The node with the dangling input.
        node: NodeId,
        /// The dangling input port.
        port: usize,
    },
    /// After building, some node output port was left unwired.
    UnwiredOutput {
        /// The node with the dangling output.
        node: NodeId,
        /// The dangling output port.
        port: usize,
    },
    /// After building, some counter in `0..output_width` was never wired.
    UnwiredCounter {
        /// The counter that was never wired.
        counter: usize,
    },
    /// The network has no inputs.
    NoInputs,
    /// The network has no output counters.
    NoOutputs,
    /// The wiring contains a cycle; balancing networks are acyclic.
    Cyclic,
    /// The network is not *uniform*: some node is reachable from the
    /// inputs along paths of different lengths, or counters sit at
    /// different depths (Definition 2.1 of the paper).
    NotUniform {
        /// Human-readable description of the uniformity violation.
        detail: String,
    },
    /// A sharded construction was asked for zero shards.
    NoShards,
    /// A token was injected on a nonexistent network input.
    InputOutOfRange {
        /// The offending network-input index.
        input: usize,
        /// The network's input width.
        width: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::WidthNotPowerOfTwo { width } => {
                write!(f, "width {width} is not a power of two >= 2")
            }
            TopologyError::UnknownNode { node } => write!(f, "unknown node {node:?}"),
            TopologyError::PortOutOfRange {
                node,
                port,
                available,
            } => write!(
                f,
                "port {port} out of range for node {node:?} with {available} ports"
            ),
            TopologyError::OutputAlreadyWired { node, port } => {
                write!(f, "output port {port} of node {node:?} is already wired")
            }
            TopologyError::InputAlreadyDriven { node, port } => {
                write!(f, "input port {port} of node {node:?} is already driven")
            }
            TopologyError::CounterAlreadyDriven { counter } => {
                write!(f, "output counter {counter} is already driven")
            }
            TopologyError::UndrivenInput { node, port } => {
                write!(f, "input port {port} of node {node:?} is not driven")
            }
            TopologyError::UnwiredOutput { node, port } => {
                write!(f, "output port {port} of node {node:?} is not wired")
            }
            TopologyError::UnwiredCounter { counter } => {
                write!(f, "output counter {counter} is not wired")
            }
            TopologyError::NoInputs => write!(f, "network has no inputs"),
            TopologyError::NoOutputs => write!(f, "network has no output counters"),
            TopologyError::Cyclic => write!(f, "network wiring contains a cycle"),
            TopologyError::NotUniform { detail } => {
                write!(f, "network is not uniform: {detail}")
            }
            TopologyError::NoShards => write!(f, "a sharded construction needs at least one shard"),
            TopologyError::InputOutOfRange { input, width } => {
                write!(f, "input {input} out of range for input width {width}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TopologyError::WidthNotPowerOfTwo { width: 3 };
        let s = e.to_string();
        assert!(s.starts_with("width 3"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
