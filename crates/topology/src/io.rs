//! Plain-text serialization of topologies.
//!
//! A simple line-based format so custom networks can be authored by
//! hand, stored beside experiments, and fed to the CLI:
//!
//! ```text
//! # counting-network topology v1
//! node 0 2 2
//! node 1 2 2
//! wire 0 0 node 1 0
//! wire 0 1 node 1 1
//! wire 1 0 counter 0
//! wire 1 1 counter 1
//! input 0 0
//! input 0 1
//! ```
//!
//! Parsing funnels through [`crate::TopologyBuilder`], so a loaded
//! topology satisfies exactly the same structural invariants
//! (uniformity, no dangling ports) as a programmatically built one.

use std::fmt::Write as _;

use crate::error::TopologyError;
use crate::topology::{NodeId, Topology, TopologyBuilder, WireEnd};

/// Renders a topology in the v1 text format.
#[must_use]
pub fn to_text(topology: &Topology) -> String {
    let mut out = String::from("# counting-network topology v1\n");
    let mut ids: Vec<NodeId> = topology.iter_nodes().collect();
    ids.sort_unstable();
    for id in &ids {
        let _ = writeln!(
            out,
            "node {} {} {}",
            id.index(),
            topology.fan_in(*id),
            topology.fan_out(*id)
        );
    }
    for id in &ids {
        for port in 0..topology.fan_out(*id) {
            match topology.output_wire(*id, port) {
                WireEnd::Node {
                    node,
                    port: in_port,
                } => {
                    let _ = writeln!(
                        out,
                        "wire {} {} node {} {}",
                        id.index(),
                        port,
                        node.index(),
                        in_port
                    );
                }
                WireEnd::Counter { index } => {
                    let _ = writeln!(out, "wire {} {} counter {}", id.index(), port, index);
                }
            }
        }
    }
    for x in 0..topology.input_width() {
        let pr = topology.input(x);
        let _ = writeln!(out, "input {} {}", pr.node.index(), pr.port);
    }
    out
}

/// Parses the v1 text format and validates the result.
///
/// Node ids must be dense (`0..n`) and declared before use; `#` starts
/// a comment line.
///
/// # Errors
///
/// Returns [`TopologyError::UnknownNode`] for references to undeclared
/// nodes, the usual builder errors for bad wiring, and
/// [`TopologyError::NotUniform`]-class errors from final validation.
/// Malformed lines are reported as `UnknownNode` on a sentinel id with
/// the line number (the row is unusable either way).
pub fn from_text(text: &str) -> Result<Topology, TopologyError> {
    let mut builder = TopologyBuilder::new();
    let mut nodes: Vec<NodeId> = Vec::new();

    let malformed = |line_no: usize| TopologyError::UnknownNode {
        node: NodeId(usize::MAX - line_no),
    };
    let lookup = |nodes: &[NodeId], idx: usize| -> Result<NodeId, TopologyError> {
        nodes
            .get(idx)
            .copied()
            .ok_or(TopologyError::UnknownNode { node: NodeId(idx) })
    };

    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let num =
            |s: &str| -> Result<usize, TopologyError> { s.parse().map_err(|_| malformed(line_no)) };
        match fields.as_slice() {
            ["node", id, fan_in, fan_out] => {
                if num(id)? != nodes.len() {
                    return Err(malformed(line_no));
                }
                nodes.push(builder.add_node(num(fan_in)?, num(fan_out)?));
            }
            ["wire", from, out_port, "node", to, in_port] => {
                let from = lookup(&nodes, num(from)?)?;
                let to = lookup(&nodes, num(to)?)?;
                builder.connect(from, num(out_port)?, to, num(in_port)?)?;
            }
            ["wire", from, out_port, "counter", index] => {
                let from = lookup(&nodes, num(from)?)?;
                builder.connect_counter(from, num(out_port)?, num(index)?)?;
            }
            ["input", node, port] => {
                let node = lookup(&nodes, num(node)?)?;
                builder.add_input(node, num(port)?)?;
            }
            _ => return Err(malformed(line_no)),
        }
    }
    builder.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions;
    use crate::router::SequentialRouter;

    #[test]
    fn round_trips_every_construction() {
        let nets = [
            constructions::single_balancer(),
            constructions::bitonic(8).unwrap(),
            constructions::periodic(4).unwrap(),
            constructions::counting_tree(8).unwrap(),
            constructions::counting_tree_d(9, 3).unwrap(),
            constructions::serial_line(3),
        ];
        for net in &nets {
            let text = to_text(net);
            let back = from_text(&text).unwrap();
            assert_eq!(back.depth(), net.depth());
            assert_eq!(back.input_width(), net.input_width());
            assert_eq!(back.output_width(), net.output_width());
            assert_eq!(back.node_count(), net.node_count());
            // behavioural equality: same values for the same token feed
            let mut a = SequentialRouter::new(net);
            let mut b = SequentialRouter::new(&back);
            for i in 0..40usize {
                let x = i % net.input_width();
                assert_eq!(a.route(x).unwrap().value, b.route(x).unwrap().value);
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nnode 0 2 2\nwire 0 0 counter 0\nwire 0 1 counter 1\n\
                    input 0 0\ninput 0 1\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.depth(), 1);
    }

    #[test]
    fn undeclared_node_rejected() {
        let text = "node 0 2 2\nwire 0 0 node 7 0\n";
        assert!(matches!(
            from_text(text),
            Err(TopologyError::UnknownNode { .. })
        ));
    }

    #[test]
    fn non_dense_ids_rejected() {
        let text = "node 5 2 2\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_text("node 0 two 2\n").is_err());
        assert!(from_text("wiring 0 0 counter 0\n").is_err());
        assert!(from_text("node 0 2\n").is_err());
    }

    #[test]
    fn validation_still_applies() {
        // a dangling output port must be caught by finalize
        let text = "node 0 2 2\nwire 0 0 counter 0\ninput 0 0\ninput 0 1\n";
        assert!(matches!(
            from_text(text),
            Err(TopologyError::UnwiredOutput { .. })
        ));
    }
}
