//! Sequential (atomic, untimed) token routing through a [`Topology`].
//!
//! The router treats every balancer transition as an instantaneous
//! atomic event and routes one whole token at a time from a network
//! input to an output counter. Because balancers are deterministic
//! round-robin switches, routing tokens one at a time produces exactly
//! the quiescent states of the network, which is what the counting
//! (step) property quantifies over.

use crate::balancer::BalancerState;
use crate::error::TopologyError;
use crate::step::OutputCounts;
use crate::topology::{NodeId, Topology, WireEnd};

/// The full path a routed token took, used by tests and the adversary
/// crate to reason about which balancers a token visited (Lemma 4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPath {
    /// Network input the token entered on.
    pub input: usize,
    /// `(node, output port taken)` for every balancer visited, in order.
    pub hops: Vec<(NodeId, usize)>,
    /// Output counter the token reached.
    pub counter: usize,
    /// The value the counter assigned: `counter + w * (arrivals before)`.
    pub value: u64,
}

/// Routes tokens one at a time through a network, maintaining balancer
/// toggle states and output-counter values.
///
/// # Example
///
/// ```
/// use cnet_topology::{constructions, router::SequentialRouter};
///
/// let net = constructions::single_balancer();
/// let mut r = SequentialRouter::new(&net);
/// assert_eq!(r.route(0)?.value, 0);
/// assert_eq!(r.route(0)?.value, 1);
/// assert_eq!(r.route(1)?.value, 2);
/// # Ok::<(), cnet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SequentialRouter<'a> {
    topology: &'a Topology,
    balancers: Vec<BalancerState>,
    /// Tokens that have exited per counter.
    counters: Vec<u64>,
}

impl<'a> SequentialRouter<'a> {
    /// Creates a router over `topology` with all balancers in their
    /// initial state and all counters empty.
    #[must_use]
    pub fn new(topology: &'a Topology) -> Self {
        let balancers = topology.iter_nodes().collect::<Vec<_>>().into_iter().fold(
            vec![BalancerState::new(1); topology.node_count()],
            |mut v, id| {
                v[id.index()] = BalancerState::new(topology.fan_out(id));
                v
            },
        );
        SequentialRouter {
            topology,
            balancers,
            counters: vec![0; topology.output_width()],
        }
    }

    /// The topology this router routes over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Routes one token entering on network input `input`, returning the
    /// complete path and the value assigned by the output counter.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InputOutOfRange`] if `input` is not a
    /// valid network input.
    pub fn route(&mut self, input: usize) -> Result<TokenPath, TopologyError> {
        if input >= self.topology.input_width() {
            return Err(TopologyError::InputOutOfRange {
                input,
                width: self.topology.input_width(),
            });
        }
        let mut hops = Vec::with_capacity(self.topology.depth());
        let mut at = self.topology.input(input).node;
        loop {
            let out_port = self.balancers[at.index()].route();
            hops.push((at, out_port));
            match self.topology.output_wire(at, out_port) {
                WireEnd::Node { node, .. } => at = node,
                WireEnd::Counter { index } => {
                    let w = self.topology.output_width() as u64;
                    let value = index as u64 + w * self.counters[index];
                    self.counters[index] += 1;
                    return Ok(TokenPath {
                        input,
                        hops,
                        counter: index,
                        value,
                    });
                }
            }
        }
    }

    /// Routes `count` tokens round-robin across all inputs and returns
    /// their paths.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (none occur for a valid topology).
    pub fn route_round_robin(&mut self, count: usize) -> Result<Vec<TokenPath>, TopologyError> {
        let v = self.topology.input_width();
        (0..count).map(|i| self.route(i % v)).collect()
    }

    /// Per-counter exit counts in the current (quiescent) state.
    #[must_use]
    pub fn output_counts(&self) -> OutputCounts {
        self.counters.iter().copied().collect()
    }

    /// Total number of tokens routed so far.
    #[must_use]
    pub fn total_routed(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Resets all balancers and counters to their initial state.
    pub fn reset(&mut self) {
        for b in &mut self.balancers {
            b.reset();
        }
        for c in &mut self.counters {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions;

    #[test]
    fn single_balancer_counts_in_order() {
        let net = constructions::single_balancer();
        let mut r = SequentialRouter::new(&net);
        let values: Vec<u64> = (0..6).map(|_| r.route(0).unwrap().value).collect();
        // alternating counters, each counting by 2
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sequential_values_are_consecutive_for_bitonic() {
        let net = constructions::bitonic(4).unwrap();
        let mut r = SequentialRouter::new(&net);
        // One token at a time through a counting network must return
        // consecutive values 0, 1, 2, ... (counting property).
        for expect in 0..32u64 {
            let got = r.route((expect % 4) as usize).unwrap().value;
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn paths_have_depth_many_hops() {
        let net = constructions::bitonic(8).unwrap();
        let mut r = SequentialRouter::new(&net);
        let p = r.route(3).unwrap();
        assert_eq!(p.hops.len(), net.depth());
    }

    #[test]
    fn out_of_range_input_errors() {
        let net = constructions::single_balancer();
        let mut r = SequentialRouter::new(&net);
        assert_eq!(
            r.route(2).unwrap_err(),
            TopologyError::InputOutOfRange { input: 2, width: 2 }
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let net = constructions::bitonic(4).unwrap();
        let mut r = SequentialRouter::new(&net);
        r.route_round_robin(10).unwrap();
        r.reset();
        assert_eq!(r.total_routed(), 0);
        assert_eq!(r.route(0).unwrap().value, 0);
    }

    #[test]
    fn output_counts_track_totals() {
        let net = constructions::bitonic(4).unwrap();
        let mut r = SequentialRouter::new(&net);
        r.route_round_robin(7).unwrap();
        let counts = r.output_counts();
        assert_eq!(counts.total(), 7);
        assert!(counts.is_step());
    }
}
