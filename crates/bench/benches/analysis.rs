//! Criterion benchmark: the analysis tooling.
//!
//! Knowledge-set computation (Lemmas 3.1/3.2 machinery), the online
//! streaming checker, and the exhaustive interleaving enumerator.

use cnet_timing::executor::TimedExecutor;
use cnet_timing::linearizability::OnlineChecker;
use cnet_timing::{interleave, knowledge, random, LinkTiming};
use cnet_topology::constructions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_analysis");
    let net = constructions::bitonic(16).expect("valid");
    let timing = LinkTiming::new(5, 10).expect("valid");
    for tokens in [100usize, 400] {
        let schedule = random::uniform_schedule(&net, timing, tokens, 4, 3).expect("schedule");
        let exec = TimedExecutor::new(&net).run(&schedule).expect("execution");
        group.throughput(Throughput::Elements(tokens as u64));
        group.bench_with_input(BenchmarkId::new("compute", tokens), &exec, |b, exec| {
            b.iter(|| knowledge::KnowledgeAnalysis::compute(&net, std::hint::black_box(exec)))
        });
        group.bench_with_input(BenchmarkId::new("lemma_3_2", tokens), &exec, |b, exec| {
            b.iter(|| knowledge::verify_lemma_3_2(&net, std::hint::black_box(exec), timing.c1()))
        });
    }
    group.finish();
}

fn bench_online_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_checker");
    let net = constructions::bitonic(32).expect("valid");
    let timing = LinkTiming::new(5, 25).expect("valid");
    let schedule = random::uniform_schedule(&net, timing, 5_000, 3, 9).expect("schedule");
    let exec = TimedExecutor::new(&net).run(&schedule).expect("execution");
    let mut ops = exec.operations().to_vec();
    ops.sort_by_key(|o| o.end);
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.bench_function("stream_5000", |b| {
        b.iter(|| {
            let mut checker = OnlineChecker::new();
            for op in &ops {
                checker.observe(*op);
            }
            checker.finish()
        })
    });
    group.finish();
}

fn bench_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("interleave_enumeration");
    group.sample_size(10);
    let tree = constructions::counting_tree(4).expect("valid");
    // 3 tokens x 3 moves: 1680 executions per iteration
    group.throughput(Throughput::Elements(1680));
    group.bench_function("tree4_three_tokens", |b| {
        b.iter(|| interleave::enumerate_interleavings(&tree, &[0, 0, 0], u64::MAX))
    });
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_verification");
    group.sample_size(10);
    for w in [8usize, 16] {
        let net = constructions::bitonic(w).expect("valid");
        group.throughput(Throughput::Elements(1 << w));
        group.bench_with_input(BenchmarkId::new("zero_one_check", w), &net, |b, net| {
            b.iter(|| cnet_topology::verify::is_counting_network(net, 1 << 20))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_knowledge,
    bench_online_checker,
    bench_interleave,
    bench_verify
);
criterion_main!(benches);
