//! Criterion benchmark: the data structures of `cnet-structures`.
//!
//! Queue throughput with fetch-add vs counting-network tickets, and
//! stack throughput with and without the elimination array.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cnet_concurrent::counter::FetchAddCounter;
use cnet_structures::queue::NetQueue;
use cnet_structures::stack::ElimStack;
use cnet_topology::constructions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ITEMS: usize = 4_000;

/// One producer and one consumer move `ITEMS` items through the queue.
fn run_queue<E, D>(queue: Arc<NetQueue<u64, E, D>>, iters: u64) -> Duration
where
    E: cnet_concurrent::counter::Counter + 'static,
    D: cnet_concurrent::counter::Counter + 'static,
{
    let start = Instant::now();
    for _ in 0..iters {
        let q = Arc::clone(&queue);
        let producer = std::thread::spawn(move || {
            for i in 0..ITEMS {
                q.enqueue(i as u64);
            }
        });
        let q = Arc::clone(&queue);
        let consumer = std::thread::spawn(move || {
            for _ in 0..ITEMS {
                std::hint::black_box(q.dequeue());
            }
        });
        producer.join().expect("producer");
        consumer.join().expect("consumer");
    }
    start.elapsed()
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_queue");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ITEMS as u64));
    group.bench_function("fetch_add_tickets", |b| {
        b.iter_custom(|iters| {
            let q = Arc::new(NetQueue::with_counters(
                64,
                FetchAddCounter::new(),
                FetchAddCounter::new(),
            ));
            run_queue(q, iters)
        })
    });
    group.bench_function("bitonic8_tickets", |b| {
        b.iter_custom(|iters| {
            let net = constructions::bitonic(8).expect("valid width");
            let q = Arc::new(NetQueue::over_network(64, &net));
            run_queue(q, iters)
        })
    });
    group.finish();
}

/// Two symmetric push/pop threads hammer the stack.
fn run_stack(stack: Arc<ElimStack<u64>>, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        let s = Arc::clone(&stack);
        let pusher = std::thread::spawn(move || {
            for i in 0..ITEMS {
                s.push(i as u64);
            }
        });
        let s = Arc::clone(&stack);
        let popper = std::thread::spawn(move || {
            let mut got = 0;
            while got < ITEMS {
                if s.pop().is_some() {
                    got += 1;
                }
            }
        });
        pusher.join().expect("pusher");
        popper.join().expect("popper");
    }
    start.elapsed()
}

fn bench_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("elim_stack");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ITEMS as u64));
    for (label, slots, spin) in [
        ("central_only", 0usize, 0u32),
        ("elimination_4x512", 4, 512),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(slots, spin),
            |b, &(slots, spin)| {
                b.iter_custom(|iters| run_stack(Arc::new(ElimStack::new(slots, spin)), iters))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queue, bench_stack);
criterion_main!(benches);
