//! Criterion benchmark: shared-counter throughput.
//!
//! Compares the centralized baselines (fetch-and-add, mutex) against
//! the counting-network counters (bitonic, periodic, diffracting tree)
//! at several thread counts. This is the classic counting-network
//! claim: the network counters trade single-thread latency for reduced
//! contention at scale.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cnet_concurrent::counter::{Counter, FetchAddCounter, LockCounter};
use cnet_concurrent::network::NetworkCounter;
use cnet_concurrent::tree::DiffractingTreeCounter;
use cnet_topology::constructions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const OPS_PER_THREAD: u64 = 2_000;

/// Runs `iters` batches of `threads x OPS_PER_THREAD` operations and
/// returns the elapsed wall time.
fn run_batch(counter: Arc<dyn Counter>, threads: usize, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    std::hint::black_box(c.next());
                }
            }));
        }
        for h in handles {
            h.join().expect("bench thread");
        }
    }
    start.elapsed()
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(threads as u64 * OPS_PER_THREAD));

        group.bench_with_input(BenchmarkId::new("fetch_add", threads), &threads, |b, &t| {
            b.iter_custom(|iters| run_batch(Arc::new(FetchAddCounter::new()), t, iters))
        });
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter_custom(|iters| run_batch(Arc::new(LockCounter::new()), t, iters))
        });
        group.bench_with_input(BenchmarkId::new("bitonic8", threads), &threads, |b, &t| {
            b.iter_custom(|iters| {
                let net = constructions::bitonic(8).expect("valid width");
                run_batch(Arc::new(NetworkCounter::new(&net)), t, iters)
            })
        });
        group.bench_with_input(BenchmarkId::new("periodic8", threads), &threads, |b, &t| {
            b.iter_custom(|iters| {
                let net = constructions::periodic(8).expect("valid width");
                run_batch(Arc::new(NetworkCounter::new(&net)), t, iters)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("diffracting_tree8", threads),
            &threads,
            |b, &t| {
                b.iter_custom(|iters| {
                    let tree = DiffractingTreeCounter::new(8).expect("valid width");
                    run_batch(Arc::new(tree), t, iters)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
