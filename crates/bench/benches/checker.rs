//! Criterion benchmark: the linearizability checker.
//!
//! The `O(n log n)` sweep against the quadratic reference, on traces of
//! increasing size — the design-choice ablation called out in
//! DESIGN.md.

use cnet_timing::{linearizability, Operation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_trace(n: usize, seed: u64) -> Vec<Operation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|token| {
            let start = rng.gen_range(0..n as u64 * 4);
            Operation {
                token,
                input: 0,
                start,
                end: start + rng.gen_range(1..200),
                counter: 0,
                value: rng.gen_range(0..n as u64),
            }
        })
        .collect()
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearizability_checker");
    for n in [100usize, 1_000, 5_000] {
        let trace = random_trace(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sweep", n), &trace, |b, t| {
            b.iter(|| linearizability::count_nonlinearizable(std::hint::black_box(t)))
        });
        // the quadratic reference becomes unreasonable past ~5k ops
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &trace, |b, t| {
                b.iter(|| linearizability::count_nonlinearizable_naive(std::hint::black_box(t)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
