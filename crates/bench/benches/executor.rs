//! Criterion benchmark: the timed executor and the sequential router.
//!
//! Measures tokens per second pushed through `Bitonic[32]` and the
//! width-32 counting tree, for both the untimed sequential router and
//! the event-ordered timed executor.

use cnet_timing::executor::TimedExecutor;
use cnet_timing::{random, LinkTiming};
use cnet_topology::{constructions, router::SequentialRouter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const TOKENS: usize = 2_000;

fn bench_sequential_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_router");
    group.throughput(Throughput::Elements(TOKENS as u64));
    for (name, net) in [
        ("bitonic32", constructions::bitonic(32).expect("valid")),
        ("tree32", constructions::counting_tree(32).expect("valid")),
        ("periodic16", constructions::periodic(16).expect("valid")),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            b.iter(|| {
                let mut r = SequentialRouter::new(net);
                r.route_round_robin(TOKENS).expect("routes")
            })
        });
    }
    group.finish();
}

fn bench_timed_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("timed_executor");
    group.throughput(Throughput::Elements(TOKENS as u64));
    let timing = LinkTiming::new(10, 20).expect("valid timing");
    for (name, net) in [
        ("bitonic32", constructions::bitonic(32).expect("valid")),
        ("tree32", constructions::counting_tree(32).expect("valid")),
    ] {
        let schedule = random::uniform_schedule(&net, timing, TOKENS, 5, 7).expect("schedule");
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(net, schedule),
            |b, (net, schedule)| {
                b.iter(|| TimedExecutor::new(net).run(std::hint::black_box(schedule)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_router, bench_timed_executor);
criterion_main!(benches);
