//! Criterion benchmark: the discrete-event simulator.
//!
//! Measures simulated operations per second for the two Section 5
//! configurations, plus the ablation between lock-based and
//! prism-fronted balancers at equal workloads, plus the event-queue
//! regimes: small-`n` runs drive the binary-heap queue, large-`n` runs
//! the bucket wheel, and `W = 100000` keeps events spilling to and
//! migrating back from the far heap (see `cnet-proteus`'s `queue`
//! module).

use cnet_proteus::{SimConfig, Simulator, WaitMode, Workload};
use cnet_topology::constructions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const OPS: usize = 1_000;

fn workload(processors: usize) -> Workload {
    Workload {
        total_ops: OPS,
        wait_mode: WaitMode::Fixed,
        ..Workload::paper(processors, 50, 1_000)
    }
}

fn delayed_workload(processors: usize, wait_cycles: u64) -> Workload {
    Workload {
        wait_cycles,
        ..workload(processors)
    }
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("proteus_simulator");
    group.throughput(Throughput::Elements(OPS as u64));
    let bitonic = constructions::bitonic(32).expect("valid");
    let tree = constructions::counting_tree(32).expect("valid");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("bitonic_queue_lock", n), &n, |b, &n| {
            let sim = Simulator::new(&bitonic, SimConfig::queue_lock(1));
            b.iter(|| sim.run(std::hint::black_box(&workload(n))))
        });
        group.bench_with_input(BenchmarkId::new("tree_diffracting", n), &n, |b, &n| {
            let sim = Simulator::new(&tree, SimConfig::diffracting(1));
            b.iter(|| sim.run(std::hint::black_box(&workload(n))))
        });
        // ablation: the same tree with prisms disabled (pure toggles)
        group.bench_with_input(BenchmarkId::new("tree_no_prism", n), &n, |b, &n| {
            let sim = Simulator::new(&tree, SimConfig::queue_lock(1));
            b.iter(|| sim.run(std::hint::black_box(&workload(n))))
        });
    }
    group.finish();

    // the event-queue regimes in isolation: one cell per queue path
    let mut group = c.benchmark_group("proteus_event_queue");
    group.throughput(Throughput::Elements(OPS as u64));
    for (label, n, w) in [
        ("heap_small_n", 4usize, 100u64),
        ("wheel_large_n", 256, 100),
        ("far_spill_high_w", 256, 100_000),
    ] {
        group.bench_function(BenchmarkId::new(label, format!("n{n}_w{w}")), |b| {
            let sim = Simulator::new(&bitonic, SimConfig::queue_lock(1));
            b.iter(|| sim.run(std::hint::black_box(&delayed_workload(n, w))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
