//! The Section 5 experiment grid, shared by the figure binaries.

use cnet_proteus::{RunStats, SimConfig, Simulator, WaitMode, Workload};
use cnet_topology::{constructions, Topology};

use crate::{percent, ResultTable, PAPER_CONCURRENCY, PAPER_WAITS, PAPER_WIDTH};

/// Which of the paper's two network implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// `Bitonic[32]` with queue-lock balancers.
    Bitonic,
    /// The width-32 diffracting tree (prism arrays + queue-lock
    /// toggles).
    DiffractingTree,
}

impl NetworkKind {
    /// Human-readable label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::Bitonic => "Bitonic Counting Network",
            NetworkKind::DiffractingTree => "Diffracting Tree",
        }
    }

    /// Builds the width-32 network of this kind.
    ///
    /// # Panics
    ///
    /// Never panics: 32 is a valid width for both constructions.
    #[must_use]
    pub fn build(self, width: usize) -> Topology {
        match self {
            NetworkKind::Bitonic => constructions::bitonic(width).expect("valid width"),
            NetworkKind::DiffractingTree => {
                constructions::counting_tree(width).expect("valid width")
            }
        }
    }

    /// The simulator configuration the paper pairs with this network.
    #[must_use]
    pub fn config(self, seed: u64) -> SimConfig {
        match self {
            NetworkKind::Bitonic => SimConfig::queue_lock(seed),
            NetworkKind::DiffractingTree => SimConfig::diffracting(seed),
        }
    }
}

/// One cell of the experiment grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Concurrency level `n`.
    pub processors: usize,
    /// Injected wait `W`.
    pub wait_cycles: u64,
    /// The full measurement for this cell.
    pub stats: RunStats,
}

/// Runs the full `(W, n)` grid of Figures 5/6 for one network kind and
/// delayed fraction `F` (percent), with `total_ops` operations per cell
/// (the paper used 5000).
#[must_use]
pub fn run_grid(kind: NetworkKind, delayed_percent: u32, total_ops: usize, seed: u64) -> Vec<Cell> {
    let net = kind.build(PAPER_WIDTH);
    let mut cells = Vec::new();
    for &wait_cycles in &PAPER_WAITS {
        for &processors in &PAPER_CONCURRENCY {
            let workload = Workload {
                processors,
                delayed_percent,
                wait_cycles,
                total_ops,
                wait_mode: WaitMode::Fixed,
            };
            let stats = Simulator::new(&net, kind.config(seed)).run(&workload);
            cells.push(Cell {
                processors,
                wait_cycles,
                stats,
            });
        }
    }
    cells
}

/// Formats a grid as a non-linearizability-ratio table (Figures 5/6):
/// one row per `W`, one column per `n`.
#[must_use]
pub fn ratio_table(title: &str, cells: &[Cell]) -> ResultTable {
    let columns: Vec<String> = PAPER_CONCURRENCY.iter().map(|n| format!("n={n}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(title, &column_refs);
    for &w in &PAPER_WAITS {
        let row: Vec<String> = PAPER_CONCURRENCY
            .iter()
            .map(|&n| {
                let cell = cells
                    .iter()
                    .find(|c| c.processors == n && c.wait_cycles == w)
                    .expect("full grid");
                percent(cell.stats.nonlinearizable_ratio())
            })
            .collect();
        table.push_row(format!("W={w}"), row);
    }
    table
}

/// Formats a grid as an average-`c2/c1` table (Figure 7).
#[must_use]
pub fn average_ratio_table(title: &str, cells: &[Cell]) -> ResultTable {
    let columns: Vec<String> = PAPER_CONCURRENCY.iter().map(|n| format!("n={n}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(title, &column_refs);
    for &w in &PAPER_WAITS {
        let row: Vec<String> = PAPER_CONCURRENCY
            .iter()
            .map(|&n| {
                let cell = cells
                    .iter()
                    .find(|c| c.processors == n && c.wait_cycles == w)
                    .expect("full grid");
                format!("{:.2}", cell.stats.average_ratio(w))
            })
            .collect();
        table.push_row(format!("W={w}"), row);
    }
    table
}

/// Parses an optional `--ops N` CLI argument (default: the paper's
/// 5000) so CI and quick runs can shrink the experiment.
#[must_use]
pub fn ops_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--ops" {
            if let Some(v) = args.next() {
                if let Ok(n) = v.parse() {
                    return n;
                }
            }
        }
    }
    5000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_cells_quickly() {
        let cells = run_grid(NetworkKind::Bitonic, 50, 50, 1);
        assert_eq!(cells.len(), PAPER_WAITS.len() * PAPER_CONCURRENCY.len());
        for c in &cells {
            assert_eq!(c.stats.operations.len(), 50);
        }
        let t = ratio_table("t", &cells);
        assert!(t.to_text().contains("W=100000"));
        let t = average_ratio_table("t", &cells);
        assert!(t.to_csv().contains("n=256"));
    }

    #[test]
    fn kinds_build_their_networks() {
        assert_eq!(NetworkKind::Bitonic.build(8).depth(), 6);
        assert_eq!(NetworkKind::DiffractingTree.build(8).depth(), 3);
        assert!(NetworkKind::Bitonic.config(0).prism.is_none());
        assert!(NetworkKind::DiffractingTree.config(0).prism.is_some());
    }
}
