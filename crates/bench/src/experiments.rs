//! The Section 5 experiment grid — now provided by [`cnet_harness`].
//!
//! The hand-rolled `run_grid` loop (which reused one PRNG seed for all
//! 20 cells) was replaced by [`cnet_harness::Grid`], which derives a
//! distinct seed per cell and runs cells over a deterministic worker
//! pool. This module re-exports the grid surface under its old path.

pub use cnet_harness::{run_jobs, run_jobs_report, CellRun, Grid, GridOutcome, Job, NetworkKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_the_old_run_grid_shape() {
        let grid = Grid::paper(NetworkKind::Bitonic, 50, 50, 1);
        let outcome = grid.run(1);
        assert_eq!(outcome.cells.len(), 20);
        for c in &outcome.cells {
            assert_eq!(c.stats.operations.len(), 50);
        }
        let t = outcome.ratio_table("t");
        assert!(t.to_text().contains("W=100000"));
        let t = outcome.average_ratio_table("t");
        assert!(t.to_csv().contains("n=256"));
    }
}
