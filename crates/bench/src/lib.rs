//! The figure/table regenerator binaries for the paper's evaluation.
//!
//! Every table and figure has a binary in `src/bin/` that re-runs the
//! corresponding experiment on the `cnet-proteus` simulator through the
//! shared [`cnet_harness`] crate and prints the measured series as an
//! aligned text table (the shape-comparison artifact recorded in
//! EXPERIMENTS.md) and as CSV (for external plotting), while writing a
//! machine-readable JSON report into `results/`:
//!
//! * `figure5` — non-linearizability ratios, `F = 25%`;
//! * `figure6` — non-linearizability ratios, `F = 50%`;
//! * `figure7` — the average `c2/c1 = (Tog + W)/Tog` table;
//! * `controls` — the paper's control runs (`F ∈ {0, 100}` and/or
//!   `W = 0`, plus uniform-random waits): all expected violation-free;
//! * `section4` — the adversarial executions of Section 4 replayed
//!   through the timed executor.
//!
//! All binaries share the harness flag surface:
//! `--ops N --seed S --threads T --json PATH`.
//!
//! The sweep machinery itself (grids, the worker pool, records, the
//! `ResultTable` renderer) lives in [`cnet_harness`]; this crate
//! re-exports the pieces the binaries use so older code keeps
//! compiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use cnet_harness::{percent, ResultTable, PAPER_CONCURRENCY, PAPER_WAITS, PAPER_WIDTH};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_resolve_to_the_harness() {
        assert_eq!(percent(0.1234), "12.34%");
        assert_eq!(PAPER_CONCURRENCY.len() * PAPER_WAITS.len(), 20);
        assert_eq!(PAPER_WIDTH, 32);
        let t = ResultTable::new("t", &["a"]);
        assert_eq!(t.title(), "t");
    }
}
