//! Shared harness utilities for the figure/table regenerator binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that re-runs the corresponding experiment on the
//! `cnet-proteus` simulator and prints the measured series both as an
//! aligned text table (the shape-comparison artifact recorded in
//! EXPERIMENTS.md) and as CSV (for external plotting):
//!
//! * `figure5` — non-linearizability ratios, `F = 25%`;
//! * `figure6` — non-linearizability ratios, `F = 50%`;
//! * `figure7` — the average `c2/c1 = (Tog + W)/Tog` table;
//! * `controls` — the paper's control runs (`F ∈ {0, 100}` and/or
//!   `W = 0`, plus uniform-random waits): all expected violation-free;
//! * `section4` — the adversarial executions of Section 4 replayed
//!   through the timed executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use std::fmt::Write as _;

/// A rectangular results table with row and column labels, rendered as
/// aligned text or CSV.
#[derive(Debug, Clone)]
pub struct ResultTable {
    title: String,
    column_labels: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl ResultTable {
    /// Creates an empty table titled `title` with the given column
    /// labels (the row-label column is implicit).
    #[must_use]
    pub fn new(title: impl Into<String>, column_labels: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            column_labels: column_labels.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of column
    /// labels.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.column_labels.len(),
            "row width must match the column labels"
        );
        self.rows.push((label.into(), cells));
    }

    /// Renders an aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.column_labels.iter().map(String::len).collect();
        let mut label_width = 0;
        for (label, cells) in &self.rows {
            label_width = label_width.max(label.len());
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:label_width$}", "");
        for (i, l) in self.column_labels.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", l, w = widths[i]);
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:label_width$}");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "  {:>w$}", c, w = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV with the title as a comment line.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "row,{}", self.column_labels.join(","));
        for (label, cells) in &self.rows {
            let _ = writeln!(out, "{label},{}", cells.join(","));
        }
        out
    }
}

/// Formats a ratio as a percentage with two decimals ("1.23%").
#[must_use]
pub fn percent(ratio: f64) -> String {
    format!("{:.2}%", ratio * 100.0)
}

/// The concurrency levels used throughout the paper's Section 5.
pub const PAPER_CONCURRENCY: [usize; 5] = [4, 16, 64, 128, 256];

/// The wait values `W` used throughout the paper's Section 5.
pub const PAPER_WAITS: [u64; 4] = [100, 1000, 10_000, 100_000];

/// The network width used in the paper's Section 5.
pub const PAPER_WIDTH: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text() {
        let mut t = ResultTable::new("demo", &["n=4", "n=16"]);
        t.push_row("W=100", vec!["0.00%".into(), "1.23%".into()]);
        t.push_row("W=1000", vec!["4.5%".into(), "0.1%".into()]);
        let text = t.to_text();
        assert!(text.contains("# demo"));
        assert!(text.contains("n=4"));
        assert!(text.contains("W=1000"));
    }

    #[test]
    fn table_renders_csv() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push_row("r1", vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("row,a,b"));
        assert!(csv.contains("r1,1,2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = ResultTable::new("demo", &["a"]);
        t.push_row("r", vec!["1".into(), "2".into()]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.0), "0.00%");
        assert_eq!(percent(0.1234), "12.34%");
    }
}
