//! Regenerates **Figure 5** of the paper: non-linearizability ratios
//! with `F = 25%` of the processors delayed, for the width-32 bitonic
//! counting network and diffracting tree, over
//! `W ∈ {100, 1000, 10000, 100000}` and `n ∈ {4, 16, 64, 128, 256}`.
//!
//! Usage: `figure5 [--ops N]` (default 5000 operations per cell, as in
//! the paper).

use cnet_bench::experiments::{ops_from_args, ratio_table, run_grid, NetworkKind};

fn main() {
    let ops = ops_from_args();
    println!("Figure 5 — non-linearizability ratios, F = 25% delayed processors");
    println!("({ops} operations per cell, width 32)\n");
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let cells = run_grid(kind, 25, ops, 0xF165);
        let table = ratio_table(kind.label(), &cells);
        println!("{}", table.to_text());
        println!("{}", table.to_csv());
    }
}
