//! Regenerates **Figure 5** of the paper: non-linearizability ratios
//! with `F = 25%` of the processors delayed, for the width-32 bitonic
//! counting network and diffracting tree, over
//! `W ∈ {100, 1000, 10000, 100000}` and `n ∈ {4, 16, 64, 128, 256}`.
//!
//! Usage: `figure5 [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`
//! (default 5000 operations per cell, as in the paper).

use cnet_harness::{BenchArgs, BenchReport, Grid, NetworkKind};

fn main() {
    let args = BenchArgs::parse("figure5");
    let mut report = BenchReport::new("figure5", args.threads);
    println!("Figure 5 — non-linearizability ratios, F = 25% delayed processors");
    println!("({} operations per cell, width 32)\n", args.ops);
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let outcome = Grid::paper(kind, 25, args.ops, args.base_seed(0xF165)).run(args.threads);
        let table = outcome.ratio_table(kind.label());
        println!("{}", table.to_text());
        println!("{}", table.to_csv());
        let observed = outcome
            .report
            .records
            .iter()
            .filter(|r| r.metrics.is_some())
            .count();
        if observed > 0 {
            println!(
                "(probe layer on: {observed} cells carry a metrics block in the JSON report)\n"
            );
        }
        report.push_table(&table);
        report.push_grid(outcome.report);
    }
    report.emit(&args);
}
