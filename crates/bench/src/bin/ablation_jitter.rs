//! Ablation: wire-latency jitter vs violations at high concurrency.
//!
//! EXPERIMENTS.md's deviation note claims that without timing variance
//! the deterministic queue locks serialize the saturated network and
//! violations vanish at large `n`. This sweep makes that claim a
//! table: violations at `n = 256, W = 10000, F = 50%` as the uniform
//! link jitter grows from 0.
//!
//! Usage: `ablation_jitter [--ops N]`.

use cnet_bench::experiments::ops_from_args;
use cnet_bench::{percent, ResultTable};
use cnet_proteus::{SimConfig, Simulator, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let ops = ops_from_args();
    let net = constructions::counting_tree(32).expect("valid width");
    let bitonic = constructions::bitonic(32).expect("valid width");
    let workload = Workload {
        processors: 256,
        delayed_percent: 50,
        wait_cycles: 10_000,
        total_ops: ops,
        wait_mode: WaitMode::Fixed,
    };
    let mut table = ResultTable::new(
        format!("jitter ablation (n=256, F=50%, W=10000, {ops} ops)"),
        &["bitonic nonlin", "tree nonlin"],
    );
    for jitter in [0u64, 50, 200, 800, 3200] {
        let b = Simulator::new(
            &bitonic,
            SimConfig {
                link_jitter: jitter,
                ..SimConfig::queue_lock(0xA1)
            },
        )
        .run(&workload);
        let t = Simulator::new(
            &net,
            SimConfig {
                link_jitter: jitter,
                ..SimConfig::diffracting(0xA1)
            },
        )
        .run(&workload);
        table.push_row(
            format!("jitter={jitter}"),
            vec![
                percent(b.nonlinearizable_ratio()),
                percent(t.nonlinearizable_ratio()),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
}
