//! Ablation: wire-latency jitter vs violations at high concurrency.
//!
//! EXPERIMENTS.md's deviation note claims that without timing variance
//! the deterministic queue locks serialize the saturated network and
//! violations vanish at large `n`. This sweep makes that claim a
//! table: violations at `n = 256, W = 10000, F = 50%` as the uniform
//! link jitter grows from 0.
//!
//! Usage: `ablation_jitter [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_seed, percent, run_jobs_report, BenchArgs, BenchReport, Job, ResultTable,
};
use cnet_proteus::{SimConfig, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let args = BenchArgs::parse("ablation_jitter");
    let base = args.base_seed(0xA1);
    let mut report = BenchReport::new("ablation_jitter", args.threads);
    let nets = [
        constructions::bitonic(32).expect("valid width"),
        constructions::counting_tree(32).expect("valid width"),
    ];
    let workload = Workload {
        total_ops: args.ops,
        wait_mode: WaitMode::Fixed,
        ..Workload::paper(256, 50, 10_000)
    };
    let jitters = [0u64, 50, 200, 800, 3200];
    let mut jobs = Vec::new();
    for &jitter in &jitters {
        for (net, name) in [(0usize, "bitonic"), (1, "tree")] {
            let seed = derive_seed(base, &format!("ablation_jitter/{name}"), &[jitter]);
            let config = if net == 0 {
                SimConfig::queue_lock(seed)
            } else {
                SimConfig::diffracting(seed)
            };
            jobs.push(Job {
                label: format!("{name},jitter={jitter}"),
                kind: name.to_string(),
                net,
                config: SimConfig {
                    fabric: cnet_proteus::Fabric::degenerate(config.link_cost(), jitter),
                    ..config
                },
                workload: workload.clone(),
            });
        }
    }

    let title = format!("jitter ablation (n=256, F=50%, W=10000, {} ops)", args.ops);
    let (cells, grid) = run_jobs_report(&title, base, &nets, &jobs, args.threads);

    let mut table = ResultTable::new(&title, &["bitonic nonlin", "tree nonlin"]);
    for (i, &jitter) in jitters.iter().enumerate() {
        table.push_row(
            format!("jitter={jitter}"),
            vec![
                percent(cells[2 * i].record.stats.nonlinearizable_ratio),
                percent(cells[2 * i + 1].record.stats.nonlinearizable_ratio),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
    report.push_table(&table);
    report.push_grid(grid);
    report.emit(&args);
}
