//! Consistency breakdown of the Section 5 benchmark: how much of the
//! non-linearizability is visible to a single process (the
//! sequential-consistency-style program-order count), and where in the
//! run the violations cluster.
//!
//! The paper remarks that linearizability "is related to (but not
//! identical with)" sequential consistency; this experiment quantifies
//! the gap on the benchmark itself.
//!
//! Usage: `consistency [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_cell_seed, percent, run_jobs_report, BenchArgs, BenchReport, CellRun, Job, NetworkKind,
    ResultTable, PAPER_WAITS, PAPER_WIDTH,
};
use cnet_proteus::{WaitMode, Workload};
use cnet_timing::windows;

fn main() {
    let args = BenchArgs::parse("consistency");
    let base = args.base_seed(0xCC);
    let mut report = BenchReport::new("consistency", args.threads);
    let n = 64;
    println!(
        "consistency breakdown (n = {n}, F = 50%, width 32, {} ops/cell)\n",
        args.ops
    );
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let net = kind.build(PAPER_WIDTH);
        let jobs: Vec<Job> = PAPER_WAITS
            .iter()
            .map(|&w| Job {
                label: format!("W={w}"),
                kind: kind.label().to_string(),
                net: 0,
                config: kind.config(derive_cell_seed(base, kind.label(), 50, w, n)),
                workload: Workload {
                    total_ops: args.ops,
                    wait_mode: WaitMode::Fixed,
                    ..Workload::paper(n, 50, w)
                },
            })
            .collect();
        let title = format!("{} — linearizability vs program order", kind.label());
        let (cells, grid) = run_jobs_report(
            &title,
            base,
            std::slice::from_ref(&net),
            &jobs,
            args.threads,
        );

        let mut table = ResultTable::new(&title, &["nonlin", "program-order", "invisible share"]);
        let mut worst: Option<&CellRun> = None;
        for cell in &cells {
            let lin = cell.stats.nonlinearizable_count();
            let po = cell.stats.program_order_violations();
            let invisible = if lin == 0 {
                "-".to_string()
            } else {
                percent(lin.saturating_sub(po) as f64 / lin as f64)
            };
            table.push_row(
                cell.record.label.clone(),
                vec![lin.to_string(), po.to_string(), invisible],
            );
            if worst.is_none_or(|c| lin > c.stats.nonlinearizable_count()) {
                worst = Some(cell);
            }
        }
        println!("{}", table.to_text());
        if let Some(cell) = worst {
            if cell.stats.nonlinearizable_count() > 0 {
                println!(
                    "violation density over time (worst cell, W = {}):",
                    cell.record.wait_cycles
                );
                let width = (cell.stats.sim_time / 24).max(1);
                let profile = windows::density_profile(&windows::violation_density(
                    &cell.stats.operations,
                    width,
                ));
                println!("{profile}");
            }
        }
        report.push_table(&table);
        report.push_grid(grid);
    }
    report.emit(&args);
}
