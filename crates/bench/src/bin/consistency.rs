//! Consistency breakdown of the Section 5 benchmark: how much of the
//! non-linearizability is visible to a single process (the
//! sequential-consistency-style program-order count), and where in the
//! run the violations cluster.
//!
//! The paper remarks that linearizability "is related to (but not
//! identical with)" sequential consistency; this experiment quantifies
//! the gap on the benchmark itself.
//!
//! Usage: `consistency [--ops N]`.

use cnet_bench::experiments::{ops_from_args, NetworkKind};
use cnet_bench::{percent, ResultTable, PAPER_WAITS, PAPER_WIDTH};
use cnet_proteus::{Simulator, WaitMode, Workload};
use cnet_timing::windows;

fn main() {
    let ops = ops_from_args();
    let n = 64;
    println!("consistency breakdown (n = {n}, F = 50%, width 32, {ops} ops/cell)\n");
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let net = kind.build(PAPER_WIDTH);
        let mut table = ResultTable::new(
            format!("{} — linearizability vs program order", kind.label()),
            &["nonlin", "program-order", "invisible share"],
        );
        let mut worst: Option<(u64, cnet_proteus::RunStats)> = None;
        for &w in &PAPER_WAITS {
            let workload = Workload {
                processors: n,
                delayed_percent: 50,
                wait_cycles: w,
                total_ops: ops,
                wait_mode: WaitMode::Fixed,
            };
            let stats = Simulator::new(&net, kind.config(0xCC)).run(&workload);
            let lin = stats.nonlinearizable_count();
            let po = stats.program_order_violations();
            let invisible = if lin == 0 {
                "-".to_string()
            } else {
                percent(lin.saturating_sub(po) as f64 / lin as f64)
            };
            table.push_row(
                format!("W={w}"),
                vec![lin.to_string(), po.to_string(), invisible],
            );
            if worst
                .as_ref()
                .is_none_or(|(_, s)| stats.nonlinearizable_count() > s.nonlinearizable_count())
            {
                worst = Some((w, stats));
            }
        }
        println!("{}", table.to_text());
        if let Some((w, stats)) = worst {
            if stats.nonlinearizable_count() > 0 {
                println!("violation density over time (worst cell, W = {w}):");
                let width = (stats.sim_time / 24).max(1);
                let profile =
                    windows::density_profile(&windows::violation_density(&stats.operations, width));
                println!("{profile}");
            }
        }
    }
}
