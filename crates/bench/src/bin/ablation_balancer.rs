//! Ablation: balancer implementation cost in the simulator.
//!
//! Sweeps the critical-section length (`toggle_cost`) of the queue-lock
//! balancer for `Bitonic[32]` at `n = 64`, `F = 50%`, `W = 1000`. A
//! cheaper balancer means a smaller measured `Tog`, hence a *larger*
//! effective `(Tog + W)/Tog` ratio — the paper's reason for keeping
//! balancers slow enough that the `W` waits dominate `c2/c1`.
//!
//! Usage: `ablation_balancer [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_seed, percent, run_jobs_report, BenchArgs, BenchReport, Job, ResultTable,
};
use cnet_proteus::{SimConfig, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let args = BenchArgs::parse("ablation_balancer");
    let base = args.base_seed(0xBA);
    let mut report = BenchReport::new("ablation_balancer", args.threads);
    let net = constructions::bitonic(32).expect("valid width");
    let workload = Workload {
        total_ops: args.ops,
        wait_mode: WaitMode::Fixed,
        ..Workload::paper(64, 50, 1000)
    };
    let jobs: Vec<Job> = [1u64, 10, 50, 200, 800]
        .iter()
        .map(|&toggle_cost| Job {
            label: format!("cs={toggle_cost}"),
            kind: "Bitonic Counting Network".to_string(),
            net: 0,
            config: SimConfig {
                toggle_cost,
                ..SimConfig::queue_lock(derive_seed(base, "ablation_balancer", &[toggle_cost]))
            },
            workload: workload.clone(),
        })
        .collect();

    let title = format!(
        "balancer-cost ablation (bitonic32, n=64, F=50%, W=1000, {} ops)",
        args.ops
    );
    let (cells, grid) = run_jobs_report(
        &title,
        base,
        std::slice::from_ref(&net),
        &jobs,
        args.threads,
    );

    let mut table = ResultTable::new(
        &title,
        &["Tog", "avg c2/c1", "mean latency", "max queue", "nonlin"],
    );
    for cell in &cells {
        let s = &cell.record.stats;
        table.push_row(
            cell.record.label.clone(),
            vec![
                format!("{:.0}", s.avg_toggle_wait),
                format!("{:.2}", s.average_ratio),
                format!("{:.0}", s.mean_latency),
                format!("{}", s.max_lock_queue),
                percent(s.nonlinearizable_ratio),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
    report.push_table(&table);
    report.push_grid(grid);
    report.emit(&args);
}
