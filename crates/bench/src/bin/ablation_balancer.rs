//! Ablation: balancer implementation cost in the simulator.
//!
//! Sweeps the critical-section length (`toggle_cost`) of the queue-lock
//! balancer for `Bitonic[32]` at `n = 64`, `F = 50%`, `W = 1000`. A
//! cheaper balancer means a smaller measured `Tog`, hence a *larger*
//! effective `(Tog + W)/Tog` ratio — the paper's reason for keeping
//! balancers slow enough that the `W` waits dominate `c2/c1`.
//!
//! Usage: `ablation_balancer [--ops N]`.

use cnet_bench::experiments::ops_from_args;
use cnet_bench::{percent, ResultTable};
use cnet_proteus::{SimConfig, Simulator, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let ops = ops_from_args();
    let net = constructions::bitonic(32).expect("valid width");
    let workload = Workload {
        processors: 64,
        delayed_percent: 50,
        wait_cycles: 1000,
        total_ops: ops,
        wait_mode: WaitMode::Fixed,
    };
    let mut table = ResultTable::new(
        format!("balancer-cost ablation (bitonic32, n=64, F=50%, W=1000, {ops} ops)"),
        &["Tog", "avg c2/c1", "mean latency", "max queue", "nonlin"],
    );
    for toggle_cost in [1u64, 10, 50, 200, 800] {
        let config = SimConfig {
            toggle_cost,
            ..SimConfig::queue_lock(0xBA)
        };
        let stats = Simulator::new(&net, config).run(&workload);
        table.push_row(
            format!("cs={toggle_cost}"),
            vec![
                format!("{:.0}", stats.avg_toggle_wait()),
                format!("{:.2}", stats.average_ratio(workload.wait_cycles)),
                format!("{:.0}", stats.mean_latency()),
                format!("{}", stats.max_lock_queue),
                percent(stats.nonlinearizable_ratio()),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
}
