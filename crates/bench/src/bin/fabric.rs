//! Fabric sweep: Definition 2.4 violations and `c2/c1` as the wire
//! degrades from the ideal flat link into a lossy, shallow-queued
//! fabric.
//!
//! The paper's practical-linearizability claim is a statement about
//! timing: violations stay rare because real traversal times are
//! tightly banded. A real interconnect widens that band — drop-tail
//! queueing adds delay spikes, loss adds retransmission delays — so
//! this sweep measures how far the claim stretches: a width-16 bitonic
//! network under `loss ∈ {0, 0.1%, 1%}` crossed with egress queue
//! depth `∈ {unbounded, 16, 4}` (service 8 cycles, NACK backpressure),
//! plus the legacy degenerate wire as the reference cell.
//!
//! Usage: `fabric [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_seed, percent, run_jobs_report, BenchArgs, BenchReport, Job, ResultTable,
};
use cnet_proteus::{Fabric, FabricShape, LinkSpec, RetryPolicy, SimConfig, SwitchSpec};
use cnet_proteus::{WaitMode, Workload};
use cnet_topology::constructions;

const LOSSES: [u32; 3] = [0, 1_000, 10_000];
const CAPACITIES: [u32; 3] = [0, 16, 4];

fn fabric_cell(loss_per_million: u32, capacity: u32) -> Fabric {
    Fabric {
        shape: FabricShape::OneBigSwitch,
        link: LinkSpec {
            delay: 20,
            jitter: 200,
            service: 8,
            capacity,
            loss_per_million,
        },
        switch: SwitchSpec {
            service: 4,
            capacity,
        },
        backpressure: true,
        retry: RetryPolicy::default(),
    }
}

fn main() {
    let args = BenchArgs::parse("fabric");
    let base = args.base_seed(0xFAB);
    let mut report = BenchReport::new("fabric", args.threads);
    println!("Fabric degradation sweep — width-16 bitonic, n=16, F=25%, W=10000");
    println!(
        "({} operations per cell, NACK backpressure, service 8)\n",
        args.ops
    );

    let nets = [constructions::bitonic(16).expect("valid width")];
    let workload = Workload {
        total_ops: args.ops,
        wait_mode: WaitMode::Fixed,
        ..Workload::paper(16, 25, 10_000)
    };

    let mut jobs = vec![Job {
        label: "legacy wire".to_string(),
        kind: "bitonic".to_string(),
        net: 0,
        config: SimConfig::queue_lock(derive_seed(base, "fabric/legacy", &[])),
        workload: workload.clone(),
    }];
    for &loss in &LOSSES {
        for &cap in &CAPACITIES {
            let seed = derive_seed(base, "fabric", &[u64::from(loss), u64::from(cap)]);
            jobs.push(Job {
                label: format!("loss={loss}/1M,cap={cap}"),
                kind: "bitonic".to_string(),
                net: 0,
                config: SimConfig {
                    fabric: fabric_cell(loss, cap),
                    ..SimConfig::queue_lock(seed)
                },
                workload: workload.clone(),
            });
        }
    }

    let title = "fabric sweep (bitonic 16, n=16, F=25%, W=10000)".to_string();
    let (cells, grid) = run_jobs_report(&title, base, &nets, &jobs, args.threads);

    let mut table = ResultTable::new(
        &title,
        &[
            "nonlin %",
            "avg c2/c1",
            "attempts",
            "drops",
            "nacks",
            "peak q",
        ],
    );
    for cell in &cells {
        let s = &cell.record.stats;
        let f = cell.stats.fabric;
        table.push_row(
            cell.record.label.clone(),
            vec![
                percent(s.nonlinearizable_ratio),
                format!("{:.2}", s.average_ratio),
                f.attempts.to_string(),
                (f.loss_drops + f.full_drops).to_string(),
                f.nack_retries.to_string(),
                f.max_queue_depth.to_string(),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());

    // the sweep is only meaningful if the lossy cells actually
    // exercised the retry machinery and still delivered every token
    for cell in &cells {
        assert_eq!(
            cell.stats.output_counts.total(),
            args.ops as u64,
            "{}: tokens were lost",
            cell.record.label
        );
    }
    let lossiest = cells.last().expect("cells");
    assert!(
        lossiest.stats.fabric.loss_drops > 0,
        "the 1% loss cell must drop: {:?}",
        lossiest.stats.fabric
    );

    report.push_table(&table);
    report.push_grid(grid);
    report.emit(&args);
}
