//! Regenerates **Figure 7** of the paper: the average
//! `c2/c1 = (Tog + W)/Tog` measured during the simulations, for both
//! networks and both delayed fractions.
//!
//! Usage: `figure7 [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{BenchArgs, BenchReport, Grid, NetworkKind};

fn main() {
    let args = BenchArgs::parse("figure7");
    let mut report = BenchReport::new("figure7", args.threads);
    println!("Figure 7 — average c2/c1 = (Tog + W)/Tog");
    println!("({} operations per cell, width 32)\n", args.ops);
    for f in [50u32, 25] {
        for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
            let mut grid = Grid::paper(kind, f, args.ops, args.base_seed(0xF167));
            grid.title = format!("{} — F = {f}%", kind.label());
            let outcome = grid.run(args.threads);
            let table = outcome.average_ratio_table(&grid.title);
            println!("{}", table.to_text());
            println!("{}", table.to_csv());
            report.push_table(&table);
            report.push_grid(outcome.report);
        }
    }
    report.emit(&args);
}
