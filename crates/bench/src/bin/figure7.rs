//! Regenerates **Figure 7** of the paper: the average
//! `c2/c1 = (Tog + W)/Tog` measured during the simulations, for both
//! networks and both delayed fractions.
//!
//! Usage: `figure7 [--ops N]`.

use cnet_bench::experiments::{average_ratio_table, ops_from_args, run_grid, NetworkKind};

fn main() {
    let ops = ops_from_args();
    println!("Figure 7 — average c2/c1 = (Tog + W)/Tog");
    println!("({ops} operations per cell, width 32)\n");
    for f in [50u32, 25] {
        for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
            let cells = run_grid(kind, f, ops, 0xF167);
            let table = average_ratio_table(&format!("{} — F = {f}%", kind.label()), &cells);
            println!("{}", table.to_text());
            println!("{}", table.to_csv());
        }
    }
}
