//! The simulator perf sweep: wall-clock per cell across both Section 5
//! network kinds and the concurrency/wait corners that exercise every
//! event-queue path (heap mode at small `n`, the bucket wheel at large
//! `n`, the far spill at `W = 100000`).
//!
//! The committed `results/BENCH_perf.json` is the perf baseline; rerun
//! with `--baseline results/BENCH_perf.json` to get a delta table and
//! a non-zero exit on a multi-× per-cell regression. Wall-clock is the
//! *only* interesting output here — the simulated measurements are
//! deterministic and covered by the figure binaries.
//!
//! Usage: `perf [--ops N] [--seed S] [--threads T] [--json PATH]
//! [--baseline PATH]` (default 5000 operations per cell).

use cnet_harness::{derive_cell_seed, PAPER_WIDTH};
use cnet_harness::{run_jobs_report, BenchArgs, BenchReport, Job, NetworkKind, ResultTable};
use cnet_proteus::{WaitMode, Workload};

/// The sweep corners: every `(n, W)` pair lands in a distinct
/// event-queue regime.
const CELLS: [(usize, u64); 8] = [
    (4, 100),
    (4, 100_000),
    (16, 10_000),
    (64, 100),
    (64, 10_000),
    (256, 100),
    (256, 10_000),
    (256, 100_000),
];

fn main() {
    let args = BenchArgs::parse("perf");
    let mut report = BenchReport::new("perf", args.threads);
    println!("Simulator perf sweep — host wall-clock per cell");
    println!(
        "({} operations per cell, width {PAPER_WIDTH}, F = 25% delayed)\n",
        args.ops
    );
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let net = kind.build(PAPER_WIDTH);
        let jobs: Vec<Job> = CELLS
            .iter()
            .map(|&(processors, wait_cycles)| {
                let seed = derive_cell_seed(
                    args.base_seed(0x9EBF),
                    kind.label(),
                    25,
                    wait_cycles,
                    processors,
                );
                Job {
                    label: format!("W={wait_cycles},n={processors}"),
                    kind: kind.label().to_string(),
                    net: 0,
                    config: kind.config(seed),
                    workload: Workload {
                        total_ops: args.ops,
                        wait_mode: WaitMode::Fixed,
                        ..Workload::paper(processors, 25, wait_cycles)
                    },
                }
            })
            .collect();
        let (cells, grid) = run_jobs_report(
            kind.label(),
            args.base_seed(0x9EBF),
            std::slice::from_ref(&net),
            &jobs,
            args.threads,
        );
        let mut table = ResultTable::new(
            format!("{} — wall-clock", kind.label()),
            &["wall ms", "ms/kop", "sim cycles", "sim thpt"],
        );
        for c in &cells {
            table.push_row(
                c.record.label.clone(),
                vec![
                    format!("{:.2}", c.record.wall_ms),
                    format!("{:.3}", c.record.wall_ms / args.ops as f64 * 1e3),
                    format!("{}", c.record.stats.sim_time),
                    format!("{:.5}", c.record.stats.throughput),
                ],
            );
        }
        println!("{}", table.to_text());
        report.push_table(&table);
        report.push_grid(grid);
    }
    report.emit(&args);
}
