//! Regenerates the paper's Section 5 **control runs**, all of which the
//! paper reports as violation-free:
//!
//! * `F = 0%` (nobody delayed) and `F = 100%` (everybody equally
//!   delayed), each at every `W`;
//! * `W = 0` at every `F`;
//! * the uniform-random scenario: every token waits a random number of
//!   cycles in `[0, W]` after each node.
//!
//! Usage: `controls [--ops N]`.

use cnet_bench::experiments::{ops_from_args, NetworkKind};
use cnet_bench::{percent, ResultTable, PAPER_WAITS, PAPER_WIDTH};
use cnet_proteus::{Simulator, WaitMode, Workload};

fn main() {
    let ops = ops_from_args();
    println!("Section 5 control runs ({ops} operations per cell, width 32, n = 64)\n");
    let n = 64;
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let net = kind.build(PAPER_WIDTH);
        let columns: Vec<String> = PAPER_WAITS.iter().map(|w| format!("W={w}")).collect();
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut table = ResultTable::new(
            format!(
                "{} — control scenarios (non-linearizability ratio)",
                kind.label()
            ),
            &column_refs,
        );
        let scenarios: [(&str, u32, WaitMode); 3] = [
            ("F=0%", 0, WaitMode::Fixed),
            ("F=100%", 100, WaitMode::Fixed),
            ("random [0,W]", 0, WaitMode::UniformRandom),
        ];
        for (label, f, mode) in scenarios {
            let row: Vec<String> = PAPER_WAITS
                .iter()
                .map(|&w| {
                    let workload = Workload {
                        processors: n,
                        delayed_percent: f,
                        wait_cycles: w,
                        total_ops: ops,
                        wait_mode: mode,
                    };
                    let stats = Simulator::new(&net, kind.config(0xC0)).run(&workload);
                    percent(stats.nonlinearizable_ratio())
                })
                .collect();
            table.push_row(label, row);
        }
        // the W = 0 column, at F = 50%
        let w0 = {
            let workload = Workload {
                processors: n,
                delayed_percent: 50,
                wait_cycles: 0,
                total_ops: ops,
                wait_mode: WaitMode::Fixed,
            };
            Simulator::new(&net, kind.config(0xC0)).run(&workload)
        };
        println!("{}", table.to_text());
        println!("W=0 (F=50%): {}\n", percent(w0.nonlinearizable_ratio()));
        println!("{}", table.to_csv());
    }
}
