//! Regenerates the paper's Section 5 **control runs**, all of which the
//! paper reports as violation-free:
//!
//! * `F = 0%` (nobody delayed) and `F = 100%` (everybody equally
//!   delayed), each at every `W`;
//! * `W = 0` at every `F`;
//! * the uniform-random scenario: every token waits a random number of
//!   cycles in `[0, W]` after each node.
//!
//! Usage: `controls [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_seed, run_jobs_report, BenchArgs, BenchReport, Job, NetworkKind, ResultTable,
    PAPER_WAITS, PAPER_WIDTH,
};
use cnet_proteus::{WaitMode, Workload};

fn main() {
    let args = BenchArgs::parse("controls");
    let base = args.base_seed(0xC0);
    let mut report = BenchReport::new("controls", args.threads);
    println!(
        "Section 5 control runs ({} operations per cell, width 32, n = 64)\n",
        args.ops
    );
    let n = 64;
    let scenarios: [(&str, u32, WaitMode); 3] = [
        ("F=0%", 0, WaitMode::Fixed),
        ("F=100%", 100, WaitMode::Fixed),
        ("random [0,W]", 0, WaitMode::UniformRandom),
    ];
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let net = kind.build(PAPER_WIDTH);
        let mut jobs = Vec::new();
        let job = |label: String, domain: &str, f: u32, w: u64, mode: WaitMode| Job {
            label,
            kind: kind.label().to_string(),
            net: 0,
            config: kind.config(derive_seed(
                base,
                &format!("controls/{}/{domain}", kind.label()),
                &[u64::from(f), w, n as u64],
            )),
            workload: Workload {
                total_ops: args.ops,
                wait_mode: mode,
                ..Workload::paper(n, f, w)
            },
        };
        for (label, f, mode) in scenarios {
            for &w in &PAPER_WAITS {
                jobs.push(job(format!("{label},W={w}"), label, f, w, mode));
            }
        }
        // the W = 0 cell, at F = 50%
        jobs.push(job("F=50%,W=0".to_string(), "W=0", 50, 0, WaitMode::Fixed));

        let title = format!(
            "{} — control scenarios (non-linearizability ratio)",
            kind.label()
        );
        let (cells, grid) = run_jobs_report(
            &title,
            base,
            std::slice::from_ref(&net),
            &jobs,
            args.threads,
        );

        let columns: Vec<String> = PAPER_WAITS.iter().map(|w| format!("W={w}")).collect();
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut table = ResultTable::new(&title, &column_refs);
        for (s, (label, _, _)) in scenarios.iter().enumerate() {
            let row: Vec<String> = (0..PAPER_WAITS.len())
                .map(|j| {
                    cnet_harness::percent(
                        cells[s * PAPER_WAITS.len() + j]
                            .record
                            .stats
                            .nonlinearizable_ratio,
                    )
                })
                .collect();
            table.push_row(*label, row);
        }
        let w0 = cells.last().expect("W=0 cell");
        println!("{}", table.to_text());
        println!(
            "W=0 (F=50%): {}\n",
            cnet_harness::percent(w0.record.stats.nonlinearizable_ratio)
        );
        println!("{}", table.to_csv());
        report.push_table(&table);
        report.push_grid(grid);
    }
    report.emit(&args);
}
