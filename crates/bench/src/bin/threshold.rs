//! Empirical Theorem 3.6 tightness sweep across networks and ratios.
//!
//! For each network and `c2/c1` ratio, finds the largest finish-start
//! gap at which the straggler/wave family still violates and reports it
//! as a fraction of the theoretical bound `h·c2 - 2·h·c1`.
//!
//! Usage: `threshold [--threads T] [--json PATH] [--baseline PATH]` (the sweep is
//! deterministic; `--ops` and `--seed` are accepted but unused).

use cnet_harness::{pool, BenchArgs, BenchReport, ResultTable};
use cnet_timing::{threshold, LinkTiming};
use cnet_topology::constructions;

fn main() {
    let args = BenchArgs::parse("threshold");
    let mut report = BenchReport::new("threshold", args.threads);
    let networks = [
        ("tree16", constructions::counting_tree(16).expect("valid")),
        ("tree32", constructions::counting_tree(32).expect("valid")),
        ("bitonic8", constructions::bitonic(8).expect("valid")),
        ("bitonic16", constructions::bitonic(16).expect("valid")),
    ];
    let ratios = [(10u64, 25u64), (10, 30), (10, 40), (10, 60)];
    let columns: Vec<String> = ratios
        .iter()
        .map(|(c1, c2)| format!("c2/c1={:.1}", *c2 as f64 / *c1 as f64))
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        "largest violating gap / Theorem 3.6 bound (straggler-wave family)",
        &column_refs,
    );
    let cells = pool::run_indexed(networks.len() * ratios.len(), args.threads, |i| {
        let (_, net) = &networks[i / ratios.len()];
        let (c1, c2) = ratios[i % ratios.len()];
        let timing = LinkTiming::new(c1, c2).expect("valid timing");
        let r = threshold::empirical_threshold(net, timing).expect("sweep");
        match (r.max_violating_gap, r.tightness()) {
            (Some(g), Some(t)) => format!("{g}/{} ({:.0}%)", r.theory_bound, t * 100.0),
            _ => format!("none/{}", r.theory_bound),
        }
    });
    for (i, (name, _)) in networks.iter().enumerate() {
        table.push_row(
            *name,
            cells[i * ratios.len()..(i + 1) * ratios.len()].to_vec(),
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
    report.push_table(&table);
    report.emit(&args);
}
