//! Ablation: the linearizing prefix of Corollary 3.12.
//!
//! With `c2 = 3·c1` (so `k = 4`), pads the width-16 counting tree
//! (depth `h = 4`) with input chains of increasing length and measures
//! how often randomized straggler/wave schedules (the robust violation
//! pattern distilled from Theorem 4.1) still produce violations.
//!
//! Corollary 3.12 guarantees zero violations at `pad = h·(k - 2) = 8`.
//! The straggler/wave family itself dies earlier: a fast wave entering
//! right after the witness exits can only beat an all-`c2` straggler to
//! the leaves while `pad < h·(c2 - 2·c1)/c1 = 4`, so the sweep shows a
//! cliff at `pad = 4` — the corollary's bound is conservative for this
//! attack family, and exact families achieving larger pads require the
//! full paper's tightness construction.
//!
//! Usage: `ablation_prefix [--ops N] [--seed S] [--threads T]
//! [--json PATH] [--baseline PATH]` (`--ops` caps the tokens per trial).

use cnet_harness::{derive_seed, percent, pool, BenchArgs, BenchReport, ResultTable};
use cnet_timing::executor::TimedExecutor;
use cnet_timing::{measure, random, LinkTiming};
use cnet_topology::constructions;

fn main() {
    let args = BenchArgs::parse("ablation_prefix");
    let base = args.base_seed(0xA9);
    let mut report = BenchReport::new("ablation_prefix", args.threads);
    let tokens = args.ops.min(3000);
    let timing = LinkTiming::new(10, 30).expect("valid timing"); // ratio 3 => k = 4
    let inner = constructions::counting_tree(16).expect("valid width");
    let h = inner.depth();
    let k = timing.min_integer_k() as usize;
    let full_pad = measure::corollary_3_12_padding(h, k);
    println!(
        "linearizing-prefix ablation: Tree[16], h={h}, c2/c1=3, k={k}, \
         corollary pad = {full_pad}\n"
    );

    let trials = (tokens / 20).max(20);
    let mut table = ResultTable::new(
        format!("violating trials vs input padding ({trials} straggler/wave trials per row)"),
        &["depth", "violating trials", "nonlin ops"],
    );
    let pads = [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 10];
    let rows = pool::run_indexed(pads.len(), args.threads, |i| {
        let pad = pads[i];
        let net = constructions::pad_inputs(&inner, pad).expect("padding");
        let mut violating_trials = 0usize;
        let mut bad_ops = 0usize;
        let mut total_ops = 0usize;
        for trial in 0..trials as u64 {
            let seed = derive_seed(base, "ablation_prefix", &[pad as u64, trial]);
            let schedule = random::straggler_burst_schedule(&net, timing, 1, 2, 15, pad, seed)
                .expect("schedule");
            let exec = TimedExecutor::new(&net).run(&schedule).expect("execution");
            let bad = exec.nonlinearizable_count();
            violating_trials += usize::from(bad > 0);
            bad_ops += bad;
            total_ops += schedule.len();
        }
        (
            format!("pad={pad}"),
            vec![
                format!("{}", net.depth()),
                format!("{violating_trials}/{trials}"),
                percent(bad_ops as f64 / total_ops as f64),
            ],
        )
    });
    for (label, row) in rows {
        table.push_row(label, row);
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
    report.push_table(&table);
    report.emit(&args);
}
