//! The saturation atlas: open-loop arrival sweeps over the async
//! executor, locating each network's saturation knee.
//!
//! A closed-loop run cannot saturate — offered load is capped by the
//! processor count — so this bench drives the cooperative
//! [`AsyncBackend`] with `ArrivalProcess::Open` schedules and sweeps
//! the mean inter-arrival gap from far-subcritical (16 µs) down past
//! the service rate (250 ns), at two arena sizes, over both width-16
//! topologies:
//!
//! * **bitonic[16]** — the paper's Section 3 network;
//! * **counting-tree[16]** — the shallower diffracting-tree cousin.
//!
//! Every cell reports the open-loop curve ([`offered`/`achieved`
//! rates, the lag ratio, sojourn-latency quantiles) from the run's
//! schema-v5 `open_loop` block. The **knee** of a sweep is the
//! smallest gap (highest offered rate) whose completions stretched no
//! more than [`TOLERANCE`]× past the arrival span — the last point
//! where the substrate keeps up. A final table collects one knee per
//! (topology, arena) pair; the atlas is gated on every sweep having
//! one.
//!
//! Wall-clock is best-of-[`BEST_OF`] per cell; the async executor
//! always runs [`WORKERS`] OS workers, so on a single-hardware-thread
//! host [`native_cell_reps`] widens that to best-of-5 and flags the
//! records noisy (the CI gate then allows the 9× noisy factor).
//!
//! Usage: `saturation [--ops N] [--seed S] [--json PATH]
//! [--baseline PATH]` (default 5000 operations per cell).

use std::time::Instant;

use cnet_engine::{ArrivalProcess, AsyncBackend, AsyncConfig, Backend, BalancerKind, Workload};
use cnet_harness::{
    derive_cell_seed, native_cell_reps, BenchArgs, BenchReport, GridReport, ResultTable, RunRecord,
};
use cnet_topology::{constructions, Topology};

/// Network width of both topologies.
const WIDTH: usize = 16;

/// Mean inter-arrival gaps swept, nanoseconds, subcritical first. The
/// offered rate of a cell is ≈ 10^9 / gap operations per second; the
/// bottom of the sweep offers well past the serialized service rate
/// (~4 Mops/s on the reference host), so every sweep crosses its knee.
const GAPS: [u64; 8] = [16_000, 4_000, 1_000, 500, 250, 125, 60, 30];

/// Logical-client arena sizes (the async executor multiplexes these
/// onto [`WORKERS`] OS threads; the axis prices the polling sweep).
const ARENAS: [usize; 2] = [256, 4096];

/// OS worker threads under the client arena.
const WORKERS: usize = 2;

/// Equal-population latency windows per run.
const WINDOWS: usize = 8;

/// A sweep's knee is the smallest gap whose completion span stayed
/// within this factor of the arrival span.
const TOLERANCE: f64 = 1.25;

/// Runs per cell; the fastest is recorded (widened to 5 on a
/// single-hardware-thread host, with the records flagged noisy).
const BEST_OF: usize = 3;

/// The curve of one (topology, arena) sweep, one entry per gap.
struct Point {
    gap: u64,
    offered_kops: f64,
    achieved_kops: f64,
    lag: f64,
    p50_us: f64,
    p99_us: f64,
    saturated: bool,
}

/// One sweep: every gap cell, best-of-N, counting property and
/// open-loop telemetry asserted on every run.
fn sweep(
    title: &str,
    net: &Topology,
    arena: usize,
    args: &BenchArgs,
    base_seed: u64,
) -> (Vec<Point>, GridReport) {
    let started = Instant::now();
    let mut records = Vec::new();
    let mut points = Vec::new();
    let (reps, noisy) = native_cell_reps(WORKERS, BEST_OF);
    for (i, &gap) in GAPS.iter().enumerate() {
        let seed = derive_cell_seed(base_seed, title, i as u32, 0, arena);
        let workload = Workload {
            total_ops: args.ops,
            arrival: ArrivalProcess::Open { mean_gap: gap },
            ..Workload::paper(arena, 0, 0)
        };
        let config = AsyncConfig {
            workers: WORKERS,
            chunk: 1024,
            windows: WINDOWS,
        };
        let backend = AsyncBackend::network(net, BalancerKind::WaitFree, config, seed);
        let mut best: Option<RunRecord> = None;
        for _ in 0..reps {
            let outcome = backend.run(&workload);
            assert!(
                outcome.counts_exactly(),
                "{title} gap={gap}: counting property violated"
            );
            assert!(
                outcome.open_loop.is_some(),
                "{title} gap={gap}: open-loop run carried no telemetry"
            );
            let record =
                RunRecord::from_outcome(format!("gap={gap}ns"), title, &workload, seed, &outcome);
            if best.as_ref().is_none_or(|b| record.wall_ms < b.wall_ms) {
                best = Some(record);
            }
        }
        let mut best = best.expect("reps >= 1");
        best.noisy = noisy;
        let open = best.open_loop.as_ref().expect("asserted on every run");
        points.push(Point {
            gap,
            offered_kops: open.offered_rate() / 1e3,
            achieved_kops: open.achieved_rate() / 1e3,
            lag: open.lag_ratio(),
            p50_us: open.latency.quantile_upper_bound(0.50) as f64 / 1e3,
            p99_us: open.latency.quantile_upper_bound(0.99) as f64 / 1e3,
            saturated: open.is_saturated(TOLERANCE),
        });
        records.push(best);
    }
    if noisy {
        eprintln!("note: {title}: single hardware thread, best-of-{reps}, flagged noisy");
    }
    let report = GridReport {
        title: title.to_string(),
        base_seed,
        threads: WORKERS,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        records,
    };
    (points, report)
}

/// The knee of a sweep: the smallest gap still inside tolerance.
fn knee(points: &[Point]) -> Option<&Point> {
    points.iter().filter(|p| !p.saturated).min_by_key(|p| p.gap)
}

fn main() {
    let args = BenchArgs::parse("saturation");
    let base_seed = args.base_seed(0x5A70);
    let mut report = BenchReport::new("saturation", WORKERS);
    println!("Saturation atlas — open-loop gap sweeps over the async executor, best of {BEST_OF}");
    println!(
        "(width-{WIDTH} networks, {} operations per cell, {WORKERS} workers, knee at lag <= {TOLERANCE})\n",
        args.ops
    );

    let nets: [(&str, Topology); 2] = [
        (
            "bitonic",
            constructions::bitonic(WIDTH).expect("valid width"),
        ),
        (
            "counting-tree",
            constructions::counting_tree(WIDTH).expect("valid width"),
        ),
    ];

    let mut knees = ResultTable::new(
        format!("Saturation knees — smallest gap with lag <= {TOLERANCE}"),
        &["knee gap ns", "offered kops/s", "lag", "p99 us"],
    );
    let mut found_all = true;
    for (name, net) in &nets {
        for &arena in &ARENAS {
            let title = format!("Saturation {name}[{WIDTH}] n={arena}");
            let (points, grid) = sweep(&title, net, arena, &args, base_seed);
            let mut table = ResultTable::new(
                format!("{title} — open-loop curve (best of {BEST_OF})"),
                &[
                    "offered kops/s",
                    "achieved kops/s",
                    "lag",
                    "p50 us",
                    "p99 us",
                    "saturated",
                ],
            );
            for p in &points {
                table.push_row(
                    format!("gap={}ns", p.gap),
                    vec![
                        format!("{:.1}", p.offered_kops),
                        format!("{:.1}", p.achieved_kops),
                        format!("{:.3}", p.lag),
                        format!("{:.1}", p.p50_us),
                        format!("{:.1}", p.p99_us),
                        if p.saturated { "yes" } else { "no" }.to_string(),
                    ],
                );
            }
            println!("{}", table.to_text());
            report.push_table(&table);
            report.push_grid(grid);
            match knee(&points) {
                Some(k) => knees.push_row(
                    title,
                    vec![
                        k.gap.to_string(),
                        format!("{:.1}", k.offered_kops),
                        format!("{:.3}", k.lag),
                        format!("{:.1}", k.p99_us),
                    ],
                ),
                None => {
                    found_all = false;
                    knees.push_row(
                        title,
                        vec!["none".into(), "-".into(), "-".into(), "-".into()],
                    );
                }
            }
        }
    }
    println!("{}", knees.to_text());
    report.push_table(&knees);
    report.emit(&args);
    assert!(
        found_all,
        "atlas gate: every sweep must locate a knee (no gap kept lag <= {TOLERANCE})"
    );
}
