//! Regenerates **Figure 6** of the paper: non-linearizability ratios
//! with `F = 50%` of the processors delayed (same grid as Figure 5).
//!
//! Usage: `figure6 [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{BenchArgs, BenchReport, Grid, NetworkKind};

fn main() {
    let args = BenchArgs::parse("figure6");
    let mut report = BenchReport::new("figure6", args.threads);
    println!("Figure 6 — non-linearizability ratios, F = 50% delayed processors");
    println!("({} operations per cell, width 32)\n", args.ops);
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let outcome = Grid::paper(kind, 50, args.ops, args.base_seed(0xF166)).run(args.threads);
        let table = outcome.ratio_table(kind.label());
        println!("{}", table.to_text());
        println!("{}", table.to_csv());
        let observed = outcome
            .report
            .records
            .iter()
            .filter(|r| r.metrics.is_some())
            .count();
        if observed > 0 {
            println!(
                "(probe layer on: {observed} cells carry a metrics block in the JSON report)\n"
            );
        }
        report.push_table(&table);
        report.push_grid(outcome.report);
    }
    report.emit(&args);
}
