//! Regenerates **Figure 6** of the paper: non-linearizability ratios
//! with `F = 50%` of the processors delayed (same grid as Figure 5).
//!
//! Usage: `figure6 [--ops N]`.

use cnet_bench::experiments::{ops_from_args, ratio_table, run_grid, NetworkKind};

fn main() {
    let ops = ops_from_args();
    println!("Figure 6 — non-linearizability ratios, F = 50% delayed processors");
    println!("({ops} operations per cell, width 32)\n");
    for kind in [NetworkKind::Bitonic, NetworkKind::DiffractingTree] {
        let cells = run_grid(kind, 50, ops, 0xF166);
        let table = ratio_table(kind.label(), &cells);
        println!("{}", table.to_text());
        println!("{}", table.to_csv());
    }
}
