//! The motivation experiment: counting networks "eliminate sequential
//! bottlenecks and contention".
//!
//! Simulated throughput (operations per kilocycle) of a centralized
//! counter vs `Bitonic[32]` vs the width-32 diffracting tree, as
//! concurrency grows, with a 100-cycle fetch-and-increment cost at
//! every counter. The centralized counter is linearizable but flat;
//! the networks scale.
//!
//! Usage: `scaling [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_seed, run_jobs_report, BenchArgs, BenchReport, Job, ResultTable, PAPER_WIDTH,
};
use cnet_proteus::{SimConfig, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let args = BenchArgs::parse("scaling");
    let base = args.base_seed(0x5C);
    let mut report = BenchReport::new("scaling", args.threads);
    let counter_cost = 100;
    let nets = [
        constructions::serial_line(1),
        constructions::bitonic(PAPER_WIDTH).expect("valid width"),
        constructions::counting_tree(PAPER_WIDTH).expect("valid width"),
    ];
    let rows: [(&str, usize, bool); 3] = [
        ("central counter", 0, false),
        ("bitonic[32]", 1, false),
        ("diffracting[32]", 2, true),
    ];
    let concurrency = [1usize, 4, 16, 64, 256];

    let mut jobs = Vec::new();
    for (name, net, prism) in rows {
        for &n in &concurrency {
            let seed = derive_seed(base, &format!("scaling/{name}"), &[n as u64]);
            let config = if prism {
                SimConfig::diffracting(seed)
            } else {
                SimConfig::queue_lock(seed)
            };
            jobs.push(Job {
                label: format!("{name},n={n}"),
                kind: name.to_string(),
                net,
                config: SimConfig {
                    counter_cost,
                    ..config
                },
                workload: Workload {
                    total_ops: args.ops,
                    wait_mode: WaitMode::Fixed,
                    ..Workload::paper(n, 0, 0)
                },
            });
        }
    }

    let title = format!(
        "throughput, ops/kilocycle ({} ops, counter cost {counter_cost})",
        args.ops
    );
    let (cells, grid) = run_jobs_report(&title, base, &nets, &jobs, args.threads);

    let columns: Vec<String> = concurrency.iter().map(|n| format!("n={n}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(&title, &column_refs);
    for (r, (name, _, _)) in rows.iter().enumerate() {
        let row: Vec<String> = (0..concurrency.len())
            .map(|j| {
                format!(
                    "{:.2}",
                    cells[r * concurrency.len() + j].record.stats.throughput * 1000.0
                )
            })
            .collect();
        table.push_row(*name, row);
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
    report.push_table(&table);
    report.push_grid(grid);
    report.emit(&args);
}
