//! The motivation experiment: counting networks "eliminate sequential
//! bottlenecks and contention".
//!
//! Simulated throughput (operations per kilocycle) of a centralized
//! counter vs `Bitonic[32]` vs the width-32 diffracting tree, as
//! concurrency grows, with a 100-cycle fetch-and-increment cost at
//! every counter. The centralized counter is linearizable but flat;
//! the networks scale.
//!
//! Usage: `scaling [--ops N]`.

use cnet_bench::experiments::ops_from_args;
use cnet_bench::{ResultTable, PAPER_WIDTH};
use cnet_proteus::{SimConfig, Simulator, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let ops = ops_from_args();
    let counter_cost = 100;
    let central = constructions::serial_line(1);
    let bitonic = constructions::bitonic(PAPER_WIDTH).expect("valid width");
    let tree = constructions::counting_tree(PAPER_WIDTH).expect("valid width");

    let concurrency = [1usize, 4, 16, 64, 256];
    let columns: Vec<String> = concurrency.iter().map(|n| format!("n={n}")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        format!("throughput, ops/kilocycle ({ops} ops, counter cost {counter_cost})"),
        &column_refs,
    );
    for (name, net, prism) in [
        ("central counter", &central, false),
        ("bitonic[32]", &bitonic, false),
        ("diffracting[32]", &tree, true),
    ] {
        let row: Vec<String> = concurrency
            .iter()
            .map(|&n| {
                let workload = Workload {
                    processors: n,
                    delayed_percent: 0,
                    wait_cycles: 0,
                    total_ops: ops,
                    wait_mode: WaitMode::Fixed,
                };
                let base = if prism {
                    SimConfig::diffracting(0x5C)
                } else {
                    SimConfig::queue_lock(0x5C)
                };
                let config = SimConfig {
                    counter_cost,
                    ..base
                };
                let stats = Simulator::new(net, config).run(&workload);
                format!("{:.2}", stats.throughput() * 1000.0)
            })
            .collect();
        table.push_row(name, row);
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
}
