//! The elastic-frontend race: combining, sharding, and elimination
//! against the plain substrates, at equal hardware.
//!
//! Five sweeps over width-16 bitonic hardware at `n ∈ {4, 64, 256}`
//! client threads, under the paper's contended workload `F = 50%,
//! W = 1000` (half the clients spin `W` per hop, so traversals are
//! expensive and a frontend that *shares* traversals has something
//! real to win):
//!
//! * **shm plain** — [`ShmBackend::network`], one traversal per
//!   operation, the baseline every frontend must beat;
//! * **shm-batch:8** — [`ShmBackend::batch`], flat combining: a
//!   combiner claims up to 8 requests and walks the network once with
//!   a width-`k` interval reservation;
//! * **shm-shard:4** — [`ShmBackend::shard`], four `bitonic(4)` shards
//!   behind a round-robin router (same total width, shallower nets);
//! * **mp plain** — [`MpBackend::new`], one message pipeline walk per
//!   operation;
//! * **mp-elim** — [`MpBackend::elim`], paired operations enter the
//!   pipeline as one token.
//!
//! Every cell reports throughput **and** its ordering cost: the
//! Definition 2.4 non-linearizable fraction and the measured
//! `c2/c1 = (Tog + W)/Tog` — the race is only meaningful priced. A
//! final section replays a ≤16-operation trace per frontend through
//! the brute-force linearizability oracle and cross-checks it against
//! the sweep counter ([`linearizability::check_exhaustive`] answers
//! `Some` iff Definition 2.4 counts zero on exact-valued traces).
//!
//! Wall-clock is best-of-[`BEST_OF`] per cell; on a host with a single
//! hardware thread [`native_cell_reps`] widens that to best-of-5 and
//! the records carry the `noisy` flag. Like `native`, baseline
//! comparisons must use the same `--ops` as the committed baseline.
//!
//! Usage: `frontend [--ops N] [--seed S] [--json PATH]
//! [--baseline PATH]` (default 5000 operations per cell).

use std::time::Instant;

use cnet_engine::{
    Backend, BalancerKind, CombiningConfig, EliminationConfig, MpBackend, MpConfig, RoutePolicy,
    ShmBackend, Workload,
};
use cnet_harness::{
    derive_cell_seed, native_cell_reps, BenchArgs, BenchReport, GridReport, ResultTable, RunRecord,
};
use cnet_timing::linearizability;
use cnet_topology::constructions;

/// Total network width of every contender (the "equal hardware" side
/// of the race: 4 shards of width 4 against one width-16 net).
const WIDTH: usize = 16;

/// Shards behind the `shm-shard` router.
const SHARDS: usize = 4;

/// Combiner batch width for `shm-batch`.
const MAX_BATCH: u64 = 8;

/// Client-thread counts (the `n` axis of the EXPERIMENTS.md table).
const CONCURRENCY: [usize; 3] = [4, 64, 256];

/// Delayed fraction `F` (percent) and injected wait `W`: the paper's
/// contended regime, where traversal sharing pays.
const DELAYED_PERCENT: u32 = 50;
const WAIT_CYCLES: u64 = 1000;

/// Runs per cell; the fastest is recorded (widened to 5 on a
/// single-hardware-thread host, with the records flagged noisy).
const BEST_OF: usize = 3;

/// One sweep: every concurrency cell, best-of-N, counting property
/// asserted on every run.
fn sweep<'a>(
    title: &str,
    args: &BenchArgs,
    base_seed: u64,
    make: impl Fn(u64) -> Box<dyn Backend + 'a>,
) -> (Vec<RunRecord>, GridReport) {
    let started = Instant::now();
    let mut records = Vec::new();
    for n in CONCURRENCY {
        let seed = derive_cell_seed(base_seed, title, 0, 0, n);
        let workload = Workload {
            total_ops: args.ops,
            ..Workload::paper(n, DELAYED_PERCENT, WAIT_CYCLES)
        };
        let backend = make(seed);
        let (reps, noisy) = native_cell_reps(n, BEST_OF);
        if noisy {
            eprintln!("note: {title} n={n}: single hardware thread, best-of-{reps}, flagged noisy");
        }
        let mut best: Option<RunRecord> = None;
        for _ in 0..reps {
            let outcome = backend.run(&workload);
            assert!(
                outcome.counts_exactly(),
                "{title} n={n}: counting property violated"
            );
            let record = RunRecord::from_outcome(
                format!("n={n}"),
                "Bitonic Counting Network",
                &workload,
                seed,
                &outcome,
            );
            if best.as_ref().is_none_or(|b| record.wall_ms < b.wall_ms) {
                best = Some(record);
            }
        }
        let mut best = best.expect("reps >= 1");
        best.noisy = noisy;
        records.push(best);
    }
    let report = GridReport {
        title: title.to_string(),
        base_seed,
        threads: 1,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        records: records.clone(),
    };
    (records, report)
}

/// Replays one tiny trace through `backend` and cross-checks the
/// brute-force oracle against the Definition 2.4 sweep counter.
/// Returns the row for the oracle table.
fn oracle_row(backend: &dyn Backend, label: &str) -> (String, Vec<String>) {
    let ops = linearizability::EXHAUSTIVE_MAX_OPS.min(12);
    let workload = Workload {
        total_ops: ops,
        ..Workload::paper(4, DELAYED_PERCENT, WAIT_CYCLES)
    };
    let outcome = backend.run(&workload);
    assert!(
        outcome.counts_exactly(),
        "{label}: oracle trace lost the counting property"
    );
    let witness = linearizability::check_exhaustive(&outcome.stats.operations);
    let swept = linearizability::count_nonlinearizable(&outcome.stats.operations);
    // on exact-valued traces the oracle and the sweep must agree
    assert_eq!(
        witness.is_some(),
        swept == 0,
        "{label}: oracle disagrees with the Definition 2.4 sweep"
    );
    (
        label.to_string(),
        vec![
            ops.to_string(),
            if witness.is_some() { "yes" } else { "no" }.to_string(),
            swept.to_string(),
            "agree".to_string(),
        ],
    )
}

fn main() {
    let args = BenchArgs::parse("frontend");
    let base_seed = args.base_seed(0xF207);
    let net = constructions::bitonic(WIDTH).expect("width 16 is valid");
    let mut report = BenchReport::new("frontend", 1);
    println!("Elastic-frontend race — per-op wall-clock and ordering cost, best of {BEST_OF}");
    println!(
        "(bitonic[{WIDTH}] hardware, {} operations per cell, F = {DELAYED_PERCENT}%, W = {WAIT_CYCLES})\n",
        args.ops
    );

    // wide publication array: at n = 256 the default 8 slots would
    // collide most requests straight into solo traversals
    let batch_cfg = CombiningConfig {
        slots: 64,
        max_batch: MAX_BATCH,
        spin: 256,
    };
    type MakeBackend<'a> = Box<dyn Fn(u64) -> Box<dyn Backend + 'a> + 'a>;
    let sweeps: Vec<(&str, MakeBackend)> = vec![
        (
            "Frontend shm plain",
            Box::new(|seed| Box::new(ShmBackend::network(&net, BalancerKind::WaitFree, seed))),
        ),
        (
            "Frontend shm-batch:8",
            Box::new(|seed| {
                Box::new(ShmBackend::batch(
                    &net,
                    BalancerKind::WaitFree,
                    batch_cfg,
                    seed,
                ))
            }),
        ),
        (
            "Frontend shm-shard:4",
            Box::new(|seed| {
                Box::new(ShmBackend::shard(
                    &net,
                    BalancerKind::WaitFree,
                    RoutePolicy::RoundRobin,
                    SHARDS,
                    seed,
                ))
            }),
        ),
        (
            "Frontend mp plain",
            Box::new(|seed| Box::new(MpBackend::new(&net, MpConfig::default(), seed))),
        ),
        (
            "Frontend mp-elim",
            Box::new(|seed| {
                Box::new(MpBackend::elim(
                    &net,
                    MpConfig::default(),
                    EliminationConfig::default(),
                    seed,
                ))
            }),
        ),
    ];

    let mut per_op_us: Vec<Vec<f64>> = Vec::new();
    for (title, make) in &sweeps {
        let (records, grid) = sweep(title, &args, base_seed, make);
        let mut table = ResultTable::new(
            format!("{title} — throughput and ordering cost (best of {BEST_OF})"),
            &["wall ms", "us/op", "nonlin %", "avg c2/c1", "backend"],
        );
        per_op_us.push(
            records
                .iter()
                .map(|r| r.wall_ms / args.ops as f64 * 1e3)
                .collect(),
        );
        for r in &records {
            table.push_row(
                r.label.clone(),
                vec![
                    format!("{:.2}", r.wall_ms),
                    format!("{:.3}", r.wall_ms / args.ops as f64 * 1e3),
                    cnet_harness::percent(r.stats.nonlinearizable_ratio),
                    format!("{:.2}", r.stats.average_ratio),
                    r.backend.clone(),
                ],
            );
        }
        println!("{}", table.to_text());
        report.push_table(&table);
        report.push_grid(grid);
    }

    // the headline the tentpole is gated on: batch vs plain, same net
    let mut race = ResultTable::new(
        "Combining vs plain — per-op speedup (shm, width-16 bitonic)",
        &["plain us/op", "batch us/op", "speedup"],
    );
    for (i, n) in CONCURRENCY.iter().enumerate() {
        let (plain, batch) = (per_op_us[0][i], per_op_us[1][i]);
        race.push_row(
            format!("n={n}"),
            vec![
                format!("{plain:.3}"),
                format!("{batch:.3}"),
                format!("{:.2}x", plain / batch),
            ],
        );
    }
    println!("{}", race.to_text());
    report.push_table(&race);

    // the brute-force oracle section: one ≤16-op trace per frontend,
    // cross-checked against the Definition 2.4 sweep
    let mut oracle = ResultTable::new(
        "Exhaustive-oracle pass — tiny traces, oracle vs Def-2.4 sweep",
        &["ops", "linearizable", "nonlin ops", "oracle vs sweep"],
    );
    for (title, make) in &sweeps {
        let (label, row) = oracle_row(make(base_seed ^ 0x0bac1e).as_ref(), title);
        oracle.push_row(label, row);
    }
    println!("{}", oracle.to_text());
    report.push_table(&oracle);
    report.emit(&args);
}
