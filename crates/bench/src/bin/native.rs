//! The native perf sweep: real threads over the shared-memory and
//! message-passing counters, per-operation wall-clock per cell.
//!
//! Three sweeps over a width-16 bitonic network at `n ∈ {4, 64, 256}`
//! client threads, `F = 0`, `W = 0` (raw traversal speed, nothing
//! injected):
//!
//! * **shm compiled** — [`cnet_engine::ShmBackend::network`], the
//!   cache-line-aligned `CompiledNet` arena with relaxed toggle bits;
//! * **shm reference** — [`cnet_engine::ShmBackend::reference`], the
//!   preserved pre-refactor traversal, so the compiled/reference gap
//!   stays measured forever;
//! * **mp** — [`cnet_engine::MpBackend`], one thread per balancer and
//!   counter, tokens as messages.
//!
//! Native wall-clock is far noisier than the simulator's, so every
//! cell is run [`BEST_OF`] times and the fastest run is recorded —
//! that is what the committed `results/BENCH_native.json` baseline
//! holds, and the CI gate compares best-of-N against best-of-N with
//! the usual wide [`cnet_harness::baseline::REGRESSION_FACTOR`]
//! tolerance.
//!
//! Unlike the simulator gates, baseline comparisons must use the
//! *same* `--ops` as the committed baseline: a native cell pays a
//! fixed thread-spawn cost (up to 256 clients, plus one thread per
//! balancer on the mp sweep), so per-op wall-clock is size-dependent
//! and a 500-op run cannot be judged against a 5000-op baseline.
//!
//! Usage: `native [--ops N] [--seed S] [--json PATH]
//! [--baseline PATH]` (default 5000 operations per cell).

use std::time::Instant;

use cnet_engine::{Backend, BalancerKind, MpBackend, MpConfig, ShmBackend, Workload};
use cnet_harness::{
    derive_cell_seed, native_cell_reps, BenchArgs, BenchReport, GridReport, ResultTable, RunRecord,
};
use cnet_topology::constructions;

/// Network width for every sweep (the tentpole's "width ≥ 16" target).
const WIDTH: usize = 16;

/// Client-thread counts (the `n` axis of the EXPERIMENTS.md table).
const CONCURRENCY: [usize; 3] = [4, 64, 256];

/// Runs per cell; the fastest is recorded. Best-of-N is the standard
/// defense against scheduler noise on shared runners. When the host
/// exposes a single hardware thread to a multi-threaded cell,
/// [`native_cell_reps`] widens this to best-of-5 and the cell's record
/// carries the `noisy` flag.
const BEST_OF: usize = 3;

/// One sweep: run every cell best-of-[`BEST_OF`] against a freshly
/// built backend and assemble the grid report.
fn sweep<'a>(
    title: &str,
    kind_label: &str,
    args: &BenchArgs,
    base_seed: u64,
    make: impl Fn(u64) -> Box<dyn Backend + 'a>,
) -> (Vec<RunRecord>, GridReport) {
    let started = Instant::now();
    let mut records = Vec::new();
    for n in CONCURRENCY {
        let seed = derive_cell_seed(base_seed, title, 0, 0, n);
        let workload = Workload {
            total_ops: args.ops,
            ..Workload::paper(n, 0, 0)
        };
        let backend = make(seed);
        let (reps, noisy) = native_cell_reps(n, BEST_OF);
        if noisy {
            eprintln!("note: {title} n={n}: single hardware thread, best-of-{reps}, flagged noisy");
        }
        let mut best: Option<RunRecord> = None;
        for _ in 0..reps {
            let outcome = backend.run(&workload);
            assert!(
                outcome.counts_exactly(),
                "{title} n={n}: counting property violated"
            );
            let record =
                RunRecord::from_outcome(format!("n={n}"), kind_label, &workload, seed, &outcome);
            if best.as_ref().is_none_or(|b| record.wall_ms < b.wall_ms) {
                best = Some(record);
            }
        }
        let mut best = best.expect("reps >= 1");
        best.noisy = noisy;
        records.push(best);
    }
    let report = GridReport {
        title: title.to_string(),
        base_seed,
        threads: 1,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        records: records.clone(),
    };
    (records, report)
}

fn main() {
    let args = BenchArgs::parse("native");
    let base_seed = args.base_seed(0x7A7E);
    let net = constructions::bitonic(WIDTH).expect("width 16 is valid");
    let mut report = BenchReport::new("native", 1);
    println!("Native perf sweep — per-op wall-clock, best of {BEST_OF}");
    println!(
        "(bitonic[{WIDTH}], {} operations per cell, F = 0, W = 0)\n",
        args.ops
    );

    type MakeBackend = for<'a> fn(&'a cnet_topology::Topology, u64) -> Box<dyn Backend + 'a>;
    let sweeps: [(&str, &str, MakeBackend); 3] = [
        (
            "Native shm WaitFree (compiled)",
            "Bitonic Counting Network",
            |net, seed| Box::new(ShmBackend::network(net, BalancerKind::WaitFree, seed)),
        ),
        (
            "Native shm WaitFree (reference)",
            "Bitonic Counting Network",
            |net, seed| Box::new(ShmBackend::reference(net, BalancerKind::WaitFree, seed)),
        ),
        ("Native mp", "Bitonic Counting Network", |net, seed| {
            Box::new(MpBackend::new(net, MpConfig::default(), seed))
        }),
    ];

    let mut per_op_us: Vec<Vec<f64>> = Vec::new();
    for (title, kind_label, make) in sweeps {
        let (records, grid) = sweep(title, kind_label, &args, base_seed, |seed| make(&net, seed));
        let mut table = ResultTable::new(
            format!("{title} — wall-clock (best of {BEST_OF})"),
            &["wall ms", "us/op", "backend"],
        );
        per_op_us.push(
            records
                .iter()
                .map(|r| r.wall_ms / args.ops as f64 * 1e3)
                .collect(),
        );
        for r in &records {
            table.push_row(
                r.label.clone(),
                vec![
                    format!("{:.2}", r.wall_ms),
                    format!("{:.3}", r.wall_ms / args.ops as f64 * 1e3),
                    r.backend.clone(),
                ],
            );
        }
        println!("{}", table.to_text());
        report.push_table(&table);
        report.push_grid(grid);
    }

    // the headline the refactor is gated on: compiled vs reference
    let mut speedup = ResultTable::new(
        "Compiled vs reference — per-op speedup (shm WaitFree)",
        &["compiled us/op", "reference us/op", "speedup"],
    );
    for (i, n) in CONCURRENCY.iter().enumerate() {
        let (c, r) = (per_op_us[0][i], per_op_us[1][i]);
        speedup.push_row(
            format!("n={n}"),
            vec![
                format!("{c:.3}"),
                format!("{r:.3}"),
                format!("{:.2}x", r / c),
            ],
        );
    }
    println!("{}", speedup.to_text());
    report.push_table(&speedup);
    report.emit(&args);
}
