//! Replays the paper's **Section 1 and Section 4 adversarial
//! executions** through the timed executor and reports the violations
//! each produces, plus the Theorem 3.6 tightness sweep on trees.
//!
//! Usage: `section4 [--threads T] [--json PATH] [--baseline PATH]` (the replays are
//! deterministic; `--ops` and `--seed` are accepted but unused).

use cnet_adversary::{
    bitonic_attack, intro_example, tree_attack, tree_attack_with_gap, wave_attack,
};
use cnet_harness::{BenchArgs, BenchReport, ResultTable};
use cnet_timing::{measure, LinkTiming};

fn main() {
    let args = BenchArgs::parse("section4");
    let mut report = BenchReport::new("section4", args.threads);
    println!("Section 1 & 4 adversarial executions\n");

    let timing = LinkTiming::new(10, 30).expect("valid timing"); // ratio 3
    println!("link timing: {timing}\n");

    let mut scenario_table = ResultTable::new(
        "adversarial executions (c2/c1 = 3; wave at ratio 5)",
        &["depth", "tokens", "violations", "ratio"],
    );
    let scenarios = [
        intro_example(timing).expect("ratio sufficient"),
        tree_attack(32, timing).expect("ratio sufficient"),
        bitonic_attack(32, timing).expect("ratio sufficient"),
    ];
    for s in &scenarios {
        let exec = s.execute().expect("scenario executes");
        println!(
            "{:24} depth={:2} tokens={:4}  violations={:3} ({:.2}% of ops)",
            s.name,
            s.topology.depth(),
            s.schedule.len(),
            exec.nonlinearizable_count(),
            exec.nonlinearizable_ratio() * 100.0,
        );
        scenario_table.push_row(
            s.name,
            vec![
                s.topology.depth().to_string(),
                s.schedule.len().to_string(),
                exec.nonlinearizable_count().to_string(),
                format!("{:.2}%", exec.nonlinearizable_ratio() * 100.0),
            ],
        );
    }

    // Theorem 4.4 needs c2 > ((3 + log w)/2) c1; use ratio 5 for w=32.
    let wave_timing = LinkTiming::new(10, 50).expect("valid timing");
    let s = wave_attack(32, wave_timing).expect("ratio sufficient");
    let exec = s.execute().expect("scenario executes");
    println!(
        "{:24} depth={:2} tokens={:4}  violations={:3} ({:.2}% of ops)  [ratio 5, threshold {}]",
        s.name,
        s.topology.depth(),
        s.schedule.len(),
        exec.nonlinearizable_count(),
        exec.nonlinearizable_ratio() * 100.0,
        measure::bitonic_mass_violation_threshold(32),
    );
    scenario_table.push_row(
        s.name,
        vec![
            s.topology.depth().to_string(),
            s.schedule.len().to_string(),
            exec.nonlinearizable_count().to_string(),
            format!("{:.2}%", exec.nonlinearizable_ratio() * 100.0),
        ],
    );
    report.push_table(&scenario_table);

    // Tightness sweep: violations persist up to gap = h (c2 - 2 c1) - 1,
    // the edge of Theorem 3.6's guarantee.
    println!("\nTheorem 3.6 tightness on the width-32 tree (h = 5):");
    let h = 5u64;
    let slack = h * (timing.c2() - 2 * timing.c1());
    println!(
        "  finish-start separation bound h(c2 - 2 c1) = {slack} \
         (Theorem 3.6 guarantees order beyond it)"
    );
    let mut gap_table = ResultTable::new(
        format!("Theorem 3.6 tightness, width-32 tree (bound {slack})"),
        &["violations"],
    );
    for gap in [1, slack / 4, slack / 2, slack - 1] {
        let exec = tree_attack_with_gap(32, timing, gap)
            .expect("gap below the bound")
            .execute()
            .expect("scenario executes");
        println!(
            "  gap {gap:4} cycles after the witness exits -> {} violations",
            exec.nonlinearizable_count()
        );
        gap_table.push_row(
            format!("gap={gap}"),
            vec![exec.nonlinearizable_count().to_string()],
        );
    }
    println!("  gap {slack:4} -> refused: Theorem 3.6 guarantees linearization order");
    report.push_table(&gap_table);
    report.emit(&args);
}
