//! Replays the paper's **Section 1 and Section 4 adversarial
//! executions** through the timed executor and reports the violations
//! each produces, plus the Theorem 3.6 tightness sweep on trees.
//!
//! Usage: `section4`.

use cnet_adversary::{
    bitonic_attack, intro_example, tree_attack, tree_attack_with_gap, wave_attack,
};
use cnet_timing::{measure, LinkTiming};

fn main() {
    println!("Section 1 & 4 adversarial executions\n");

    let timing = LinkTiming::new(10, 30).expect("valid timing"); // ratio 3
    println!("link timing: {timing}\n");

    let scenarios = [
        intro_example(timing).expect("ratio sufficient"),
        tree_attack(32, timing).expect("ratio sufficient"),
        bitonic_attack(32, timing).expect("ratio sufficient"),
    ];
    for s in &scenarios {
        let exec = s.execute().expect("scenario executes");
        println!(
            "{:24} depth={:2} tokens={:4}  violations={:3} ({:.2}% of ops)",
            s.name,
            s.topology.depth(),
            s.schedule.len(),
            exec.nonlinearizable_count(),
            exec.nonlinearizable_ratio() * 100.0,
        );
    }

    // Theorem 4.4 needs c2 > ((3 + log w)/2) c1; use ratio 5 for w=32.
    let wave_timing = LinkTiming::new(10, 50).expect("valid timing");
    let s = wave_attack(32, wave_timing).expect("ratio sufficient");
    let exec = s.execute().expect("scenario executes");
    println!(
        "{:24} depth={:2} tokens={:4}  violations={:3} ({:.2}% of ops)  [ratio 5, threshold {}]",
        s.name,
        s.topology.depth(),
        s.schedule.len(),
        exec.nonlinearizable_count(),
        exec.nonlinearizable_ratio() * 100.0,
        measure::bitonic_mass_violation_threshold(32),
    );

    // Tightness sweep: violations persist up to gap = h (c2 - 2 c1) - 1,
    // the edge of Theorem 3.6's guarantee.
    println!("\nTheorem 3.6 tightness on the width-32 tree (h = 5):");
    let h = 5u64;
    let slack = h * (timing.c2() - 2 * timing.c1());
    println!(
        "  finish-start separation bound h(c2 - 2 c1) = {slack} \
         (Theorem 3.6 guarantees order beyond it)"
    );
    for gap in [1, slack / 4, slack / 2, slack - 1] {
        let exec = tree_attack_with_gap(32, timing, gap)
            .expect("gap below the bound")
            .execute()
            .expect("scenario executes");
        println!(
            "  gap {gap:4} cycles after the witness exits -> {} violations",
            exec.nonlinearizable_count()
        );
    }
    println!("  gap {slack:4} -> refused: Theorem 3.6 guarantees linearization order");
}
