//! Ablation: prism (diffraction) width and spin window in the
//! diffracting tree.
//!
//! Sweeps the root prism size and the spin window and reports, for the
//! width-32 tree at `n = 64`, `F = 50%`, `W = 1000`: the measured
//! `Tog`, the diffraction rate, operation latency, and the
//! non-linearizability ratio. `slots = 0` disables diffraction (plain
//! queue-lock tree).
//!
//! Usage: `ablation_prism [--ops N] [--seed S] [--threads T] [--json PATH] [--baseline PATH]`.

use cnet_harness::{
    derive_seed, percent, run_jobs_report, BenchArgs, BenchReport, Job, ResultTable,
};
use cnet_proteus::{PrismConfig, SimConfig, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let args = BenchArgs::parse("ablation_prism");
    let base = args.base_seed(0xAB);
    let mut report = BenchReport::new("ablation_prism", args.threads);
    let net = constructions::counting_tree(32).expect("valid width");
    let workload = Workload {
        total_ops: args.ops,
        wait_mode: WaitMode::Fixed,
        ..Workload::paper(64, 50, 1000)
    };
    let sweep = [
        (0usize, 0u64),
        (4, 200),
        (8, 400),
        (16, 700),
        (32, 700),
        (64, 700),
        (32, 200),
        (32, 1400),
    ];
    let jobs: Vec<Job> = sweep
        .iter()
        .map(|&(slots, spin)| {
            let seed = derive_seed(base, "ablation_prism", &[slots as u64, spin]);
            let mut config = SimConfig::queue_lock(seed);
            if slots > 0 {
                config.prism = Some(PrismConfig {
                    root_slots: slots,
                    spin_window: spin,
                    pair_cost: 60,
                });
            }
            Job {
                label: format!("slots={slots},spin={spin}"),
                kind: "Diffracting Tree".to_string(),
                net: 0,
                config,
                workload: workload.clone(),
            }
        })
        .collect();

    let title = format!(
        "prism ablation (tree32, n=64, F=50%, W=1000, {} ops)",
        args.ops
    );
    let (cells, grid) = run_jobs_report(
        &title,
        base,
        std::slice::from_ref(&net),
        &jobs,
        args.threads,
    );

    let mut table = ResultTable::new(&title, &["Tog", "diffracted", "mean latency", "nonlin"]);
    for cell in &cells {
        let s = &cell.record.stats;
        let diffracted = 2.0 * s.diffraction_pairs as f64 / s.node_visits.max(1) as f64;
        table.push_row(
            cell.record.label.clone(),
            vec![
                format!("{:.0}", s.avg_toggle_wait),
                percent(diffracted),
                format!("{:.0}", s.mean_latency),
                percent(s.nonlinearizable_ratio),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
    report.push_table(&table);
    report.push_grid(grid);
    report.emit(&args);
}
