//! Ablation: prism (diffraction) width and spin window in the
//! diffracting tree.
//!
//! Sweeps the root prism size and the spin window and reports, for the
//! width-32 tree at `n = 64`, `F = 50%`, `W = 1000`: the measured
//! `Tog`, the diffraction rate, operation latency, and the
//! non-linearizability ratio. `slots = 0` disables diffraction (plain
//! queue-lock tree).
//!
//! Usage: `ablation_prism [--ops N]`.

use cnet_bench::experiments::ops_from_args;
use cnet_bench::{percent, ResultTable};
use cnet_proteus::{PrismConfig, SimConfig, Simulator, WaitMode, Workload};
use cnet_topology::constructions;

fn main() {
    let ops = ops_from_args();
    let net = constructions::counting_tree(32).expect("valid width");
    let workload = Workload {
        processors: 64,
        delayed_percent: 50,
        wait_cycles: 1000,
        total_ops: ops,
        wait_mode: WaitMode::Fixed,
    };
    let mut table = ResultTable::new(
        format!("prism ablation (tree32, n=64, F=50%, W=1000, {ops} ops)"),
        &["Tog", "diffracted", "mean latency", "nonlin"],
    );
    for (slots, spin) in [
        (0usize, 0u64),
        (4, 200),
        (8, 400),
        (16, 700),
        (32, 700),
        (64, 700),
        (32, 200),
        (32, 1400),
    ] {
        let mut config = SimConfig::queue_lock(0xAB);
        if slots > 0 {
            config.prism = Some(PrismConfig {
                root_slots: slots,
                spin_window: spin,
                pair_cost: 60,
            });
        }
        let stats = Simulator::new(&net, config).run(&workload);
        let diffracted = 2.0 * stats.diffraction_pairs as f64 / stats.node_visits.max(1) as f64;
        table.push_row(
            format!("slots={slots},spin={spin}"),
            vec![
                format!("{:.0}", stats.avg_toggle_wait()),
                percent(diffracted),
                format!("{:.0}", stats.mean_latency()),
                percent(stats.nonlinearizable_ratio()),
            ],
        );
    }
    println!("{}", table.to_text());
    println!("{}", table.to_csv());
}
