//! Binary entry point for the `cnet` CLI; all logic lives in the
//! library so it can be unit-tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cnet_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
