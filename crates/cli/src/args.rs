//! Tiny dependency-free argument parser.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// CLI failure: bad usage, a failed underlying operation, or a tripped
/// quality gate.
#[derive(Debug)]
pub enum CliError {
    /// The invocation was malformed; the payload is a help message.
    Usage(String),
    /// The requested operation failed.
    Failed(Box<dyn Error + Send + Sync>),
    /// The operation ran to completion but a quality gate tripped
    /// (an SLO breach, a baseline regression). The dedicated exit
    /// code lets CI distinguish "the service misbehaved" from "the
    /// tool broke".
    Gate {
        /// Process exit code for `main` (3 = baseline regression,
        /// 4 = live SLO breach).
        code: i32,
        /// The full verdict, including the evidence tables.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Failed(e) => write!(f, "error: {e}"),
            CliError::Gate { message, .. } => write!(f, "{message}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(_) | CliError::Gate { .. } => None,
            CliError::Failed(e) => Some(e.as_ref()),
        }
    }
}

impl CliError {
    /// Wraps any operation error.
    pub fn failed<E: Error + Send + Sync + 'static>(e: E) -> Self {
        CliError::Failed(Box::new(e))
    }

    /// A usage error with a custom message.
    #[must_use]
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// The process exit code this error maps to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Gate { code, .. } => *code,
            _ => 2,
        }
    }
}

/// Positional arguments plus `--key value` options and `--flag`
/// switches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// The option keys that take a value; everything else starting with
/// `--` is a boolean flag.
const VALUED: &[&str] = &[
    "c1",
    "c2",
    "n",
    "f",
    "w",
    "ops",
    "seed",
    "pad",
    "arity",
    "width",
    "tokens",
    "budget",
    "threads",
    "json",
    "backend",
    "open",
    "bursty",
    "trace",
    "hop-spin",
    "socket",
    "window",
    "slo",
    "clients",
    "rate",
    "duration",
    "dump",
    "dump-every",
    "batch",
    "baseline",
    "history",
    "label",
];

/// Valued options that may also appear bare, as a flag (`--json path`
/// writes a file, a trailing `--json` selects stdout).
const FLAG_OR_VALUED: &[&str] = &["json"];

impl ParsedArgs {
    /// Splits raw arguments into positionals, options, and flags.
    ///
    /// # Errors
    ///
    /// Returns a usage error when a valued option is missing its value.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut out = ParsedArgs::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if VALUED.contains(&name) {
                    let next_is_value = it.peek().is_some_and(|v| !v.starts_with("--"));
                    if next_is_value {
                        let value = it.next().expect("peeked");
                        out.options.insert(name.to_string(), value.clone());
                    } else if FLAG_OR_VALUED.contains(&name) {
                        out.flags.push(name.to_string());
                    } else {
                        return Err(CliError::usage(format!("--{name} needs a value")));
                    }
                } else {
                    out.flags.push(name.to_string());
                }
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    ///
    /// # Errors
    ///
    /// Returns a usage error naming the missing argument.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, CliError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| CliError::usage(format!("missing <{name}> argument")))
    }

    /// A required numeric option.
    ///
    /// # Errors
    ///
    /// Returns a usage error if absent or non-numeric.
    pub fn required_u64(&self, name: &str) -> Result<u64, CliError> {
        self.u64_opt(name)?
            .ok_or_else(|| CliError::usage(format!("--{name} is required")))
    }

    /// An optional numeric option.
    ///
    /// # Errors
    ///
    /// Returns a usage error if present but non-numeric.
    pub fn u64_opt(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// The `i`-th positional argument, if present.
    #[must_use]
    pub fn positional_opt(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// An optional string-valued option (e.g. `--json <path>`).
    #[must_use]
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a boolean flag was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_mixed_arguments() {
        let a = ParsedArgs::parse(&strs(&["bitonic", "8", "--c1", "10", "--dot"])).unwrap();
        assert_eq!(a.positional(0, "kind").unwrap(), "bitonic");
        assert_eq!(a.positional(1, "width").unwrap(), "8");
        assert_eq!(a.required_u64("c1").unwrap(), 10);
        assert!(a.flag("dot"));
        assert!(!a.flag("svg"));
    }

    #[test]
    fn missing_value_is_usage_error() {
        let e = ParsedArgs::parse(&strs(&["--c1"])).unwrap_err();
        assert!(e.to_string().contains("--c1 needs a value"));
    }

    #[test]
    fn missing_positional_is_usage_error() {
        let a = ParsedArgs::parse(&[]).unwrap();
        let e = a.positional(0, "kind").unwrap_err();
        assert!(e.to_string().contains("<kind>"));
    }

    #[test]
    fn bad_number_is_usage_error() {
        let a = ParsedArgs::parse(&strs(&["--c1", "ten"])).unwrap();
        assert!(a.required_u64("c1").is_err());
    }

    #[test]
    fn missing_required_option() {
        let a = ParsedArgs::parse(&[]).unwrap();
        let e = a.required_u64("c2").unwrap_err();
        assert!(e.to_string().contains("--c2 is required"));
    }

    #[test]
    fn optional_absent_is_none() {
        let a = ParsedArgs::parse(&[]).unwrap();
        assert_eq!(a.u64_opt("seed").unwrap(), None);
    }

    #[test]
    fn json_and_threads_take_values() {
        let a = ParsedArgs::parse(&strs(&["--json", "out.json", "--threads", "4"])).unwrap();
        assert_eq!(a.str_opt("json"), Some("out.json"));
        assert_eq!(a.u64_opt("threads").unwrap(), Some(4));
        assert_eq!(a.str_opt("absent"), None);
    }

    #[test]
    fn bare_json_is_a_flag() {
        // trailing
        let a = ParsedArgs::parse(&strs(&["--ops", "10", "--json"])).unwrap();
        assert!(a.flag("json"));
        assert_eq!(a.str_opt("json"), None);
        // followed by another option
        let a = ParsedArgs::parse(&strs(&["--json", "--ops", "10"])).unwrap();
        assert!(a.flag("json"));
        assert_eq!(a.u64_opt("ops").unwrap(), Some(10));
    }

    #[test]
    fn other_valued_options_still_require_values() {
        let e = ParsedArgs::parse(&strs(&["--ops", "--json"])).unwrap_err();
        assert!(e.to_string().contains("--ops needs a value"));
    }
}
