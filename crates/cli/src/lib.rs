//! The `cnet` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to a
//! report string, so the whole CLI is unit-testable; `main` only parses
//! `std::env::args`, dispatches, and prints.
//!
//! ```text
//! cnet topo <kind> <width> [--pad N] [--arity D] [--dot]
//! cnet measure <kind> <width> --c1 C1 --c2 C2 [--json PATH]
//! cnet simulate <kind> <width> --n N --f PCT --w CYCLES [--ops N] [--prism] [--seed S] [--threads T] [--json PATH]
//! cnet run <kind> <width> [--backend sim,shm,shm-batch:K,shm-shard:S,mp,mp-elim,async,async-batch:K,async-shard:S,async-mp] [--n N] [--f PCT] [--w CYCLES] [--ops N] [--open GAP | --bursty B,GAP | --trace FILE] [--seed S] [--json PATH]
//! cnet scenario <file.json> [--json PATH]
//! cnet saturate <kind> <width> [--n N] [--ops N] [--threads T] [--seed S] [--json PATH]
//! cnet observe [kind] [--width W] [--n N] [--f PCT] [--w CYCLES] [--ops N] [--prism] [--seed S] [--json [PATH]]
//! cnet attack <intro|tree|bitonic|wave> --width W --c1 C1 --c2 C2 [--svg]
//! cnet threshold <kind> <width> --c1 C1 --c2 C2 [--json PATH]
//! cnet check <trace.csv>
//! cnet run-schedule <kind> <width> <schedule.csv> [--svg]
//! cnet serve <kind> <width> --socket PATH [--window OPS] [--slo RATE,MAG,P99NS] [--dump PATH]
//! cnet drive --socket PATH [--clients N] [--rate REQ_PER_S] [--duration SECS] [--baseline PATH]
//! ```
//!
//! Exit codes: 0 success, 2 usage/operation failure, 3 a `drive` run
//! regressed its committed SLO baseline, 4 a `serve` lifetime ended in
//! breach of its live SLO policy.
//!
//! Network kinds: `bitonic`, `periodic`, `tree`, `merger`, `block`,
//! `single`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod scenario;

pub use args::{CliError, ParsedArgs};

/// Parses raw arguments (without the program name) and runs the
/// requested subcommand, returning its report.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage or a failed operation.
pub fn run(raw: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = raw.split_first() else {
        return Err(CliError::Usage(usage()));
    };
    let args = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "topo" => commands::topo(&args),
        "measure" => commands::measure(&args),
        "simulate" => commands::simulate(&args),
        "run" => commands::run(&args),
        "scenario" => scenario::scenario(&args),
        "saturate" => commands::saturate(&args),
        "observe" => commands::observe(&args),
        "attack" => commands::attack(&args),
        "threshold" => commands::threshold(&args),
        "interleave" => commands::interleave_cmd(&args),
        "search" => commands::search(&args),
        "verify" => commands::verify(&args),
        "windows" => commands::windows_cmd(&args),
        "check" => commands::check(&args),
        "run-schedule" => commands::run_schedule(&args),
        "serve" => commands::serve(&args),
        "drive" => commands::drive_cmd(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "cnet — counting networks and their practical linearizability

usage:
  cnet topo <kind> <width> [--pad N] [--arity D] [--dot]
  cnet measure <kind> <width> --c1 C1 --c2 C2 [--json PATH]
  cnet simulate <kind> <width> [trace.csv] --n N --f PCT --w CYCLES [--ops N] [--prism] [--seed S] [--threads T] [--json PATH]
  cnet run <kind> <width> [--backend sim,shm,shm-batch:K,shm-shard:S,mp,mp-elim,async,async-batch:K,async-shard:S,async-mp] [--n N] [--f PCT] [--w CYCLES] [--ops N] [--open GAP | --bursty B,GAP | --trace FILE] [--hop-spin S] [--seed S] [--json PATH]
  cnet scenario <file.json> [--json PATH]
  cnet saturate <kind> <width> [--n N] [--ops N] [--threads T] [--seed S] [--json PATH]
  cnet observe [kind] [--width W] [--n N] [--f PCT] [--w CYCLES] [--ops N] [--prism] [--seed S] [--json [PATH]]
  cnet attack <intro|tree|bitonic|wave> --width W --c1 C1 --c2 C2 [--svg]
  cnet threshold <kind> <width> --c1 C1 --c2 C2 [--json PATH]
  cnet interleave <kind> <width> [--tokens N] [--budget N]
  cnet search <kind> <width> --c1 C1 --c2 C2 [--tokens N] [--budget N]
  cnet verify <kind> <width> [--budget N]
  cnet check <trace.csv>
  cnet windows <trace.csv> [--w WIDTH]
  cnet run-schedule <kind> <width> <schedule.csv> [--svg]
  cnet serve <kind> <width> --socket PATH [--window OPS] [--slo RATE,MAG,P99NS] [--dump PATH] [--dump-every SECS] [--history OPS] [--label L] [--seed S]
  cnet drive --socket PATH [--clients N] [--rate REQ_PER_S] [--duration SECS] [--batch K] [--window OPS] [--slo RATE,MAG,P99NS] [--baseline PATH] [--write-slo-baseline] [--seed S] [--json PATH]

network kinds: bitonic periodic tree merger block single, or `file <path>`
for a topology in the cnet-topology text format
"
    .to_string()
}
