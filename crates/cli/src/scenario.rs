//! `cnet scenario` — run a self-contained scenario description file.
//!
//! A scenario file bundles everything one run needs — network kind and
//! width, the full [`SimConfig`] (fabric included), and the
//! [`Workload`] — as one JSON object, so an experiment is a committed
//! artifact instead of a flag spelling. The same file drives the
//! simulator today and documents the run forever.
//!
//! ```text
//! cnet scenario examples/scenario_lossy_fabric.json [--json PATH]
//! ```

use std::fmt::Write as _;

use cnet_engine::{Backend, SimBackend};
use cnet_proteus::{SimConfig, Workload};
use cnet_topology::{constructions, Topology};
use serde::{Deserialize as _, Serialize as _, Value};

use crate::args::{CliError, ParsedArgs};

/// A parsed scenario description: one complete, reproducible run.
///
/// Named `ScenarioSpec` — `cnet_adversary::Scenario` already names the
/// adversarial schedule shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable scenario name, echoed in the report.
    pub name: String,
    /// Network kind: `bitonic`, `periodic`, `tree`, `merger`, `block`,
    /// or `single`.
    pub kind: String,
    /// Network width (ignored for `single`).
    pub width: usize,
    /// The machine model, fabric included.
    pub config: SimConfig,
    /// The workload to drive through it.
    pub workload: Workload,
}

serde::impl_serde_struct!(ScenarioSpec {
    name,
    kind,
    width,
    config,
    workload,
});

impl ScenarioSpec {
    /// Builds the scenario's network.
    ///
    /// # Errors
    ///
    /// Returns a usage error for an unknown kind and a failed error
    /// for an invalid width.
    pub fn network(&self) -> Result<Topology, CliError> {
        match self.kind.as_str() {
            "bitonic" => constructions::bitonic(self.width),
            "periodic" => constructions::periodic(self.width),
            "tree" => constructions::counting_tree(self.width),
            "merger" => constructions::merger(self.width),
            "block" => constructions::block(self.width),
            "single" => Ok(constructions::single_balancer()),
            other => {
                return Err(CliError::usage(format!(
                    "unknown network kind `{other}` in scenario"
                )))
            }
        }
        .map_err(CliError::failed)
    }
}

/// `cnet scenario <file>` — load, validate, run, report.
pub fn scenario(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positional(0, "scenario file")?;
    let text = std::fs::read_to_string(path).map_err(CliError::failed)?;
    let value = serde::json::from_str(&text).map_err(CliError::failed)?;
    let spec = ScenarioSpec::from_value(&value).map_err(CliError::failed)?;
    spec.config.fabric.validate().map_err(CliError::failed)?;
    let net = spec.network()?;

    let outcome = SimBackend::new(&net, spec.config)
        .try_run(&spec.workload)
        .map_err(CliError::failed)?;
    let stats = &outcome.stats;
    let summary = stats.summary(spec.workload.wait_cycles);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario `{}`: {} width {} ({} balancers)",
        spec.name,
        spec.kind,
        spec.width,
        net.node_count()
    );
    let fabric = &spec.config.fabric;
    if fabric.is_degenerate() {
        let _ = writeln!(
            out,
            "fabric: degenerate wire (delay {}, jitter {})",
            fabric.link.delay, fabric.link.jitter
        );
    } else {
        let _ = writeln!(
            out,
            "fabric: {:?}, link delay {} jitter {} service {} cap {} loss {}/1M, \
             switch service {} cap {}, {}",
            fabric.shape,
            fabric.link.delay,
            fabric.link.jitter,
            fabric.link.service,
            fabric.link.capacity,
            fabric.link.loss_per_million,
            fabric.switch.service,
            fabric.switch.capacity,
            if fabric.backpressure {
                "backpressure (NACK)"
            } else {
                "drop-tail"
            },
        );
    }
    let _ = writeln!(
        out,
        "ops: {}  sim time: {} cycles  throughput: {:.5} ops/cycle",
        summary.completed_ops, summary.sim_time, summary.throughput
    );
    let _ = writeln!(
        out,
        "Tog: {:.1}  avg c2/c1 = (Tog+W)/Tog: {:.2}",
        summary.avg_toggle_wait, summary.average_ratio
    );
    let _ = writeln!(
        out,
        "non-linearizable (Def 2.4): {} ({:.3}%)  program-order: {}",
        summary.nonlinearizable,
        summary.nonlinearizable_ratio * 100.0,
        summary.program_order_violations,
    );
    let f = stats.fabric;
    let _ = writeln!(
        out,
        "fabric attempts: {}  loss drops: {}  full drops: {}  nack retries: {}  \
         forced: {}  peak queue: {}",
        f.attempts,
        f.loss_drops,
        f.full_drops,
        f.nack_retries,
        f.forced_deliveries,
        f.max_queue_depth,
    );
    let step = if stats.output_counts.is_step() {
        "yes"
    } else {
        "NO"
    };
    let _ = writeln!(out, "output counts form a step: {step}");

    if let Some(json_path) = args.str_opt("json") {
        let report = Value::Object(vec![
            ("scenario".to_string(), spec.to_value()),
            ("summary".to_string(), summary.to_value()),
        ]);
        std::fs::write(json_path, serde::json::to_string_pretty(&report))
            .map_err(CliError::failed)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_proteus::{ArrivalProcess, Fabric, FabricShape, LinkSpec, WaitMode};

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "lossy".to_string(),
            kind: "bitonic".to_string(),
            width: 16,
            config: SimConfig {
                fabric: Fabric {
                    shape: FabricShape::TwoTier { spines: 2 },
                    link: LinkSpec {
                        delay: 20,
                        jitter: 100,
                        service: 8,
                        capacity: 16,
                        loss_per_million: 10_000,
                    },
                    backpressure: true,
                    ..Fabric::degenerate(20, 100)
                },
                ..SimConfig::queue_lock(7)
            },
            workload: Workload {
                total_ops: 500,
                wait_mode: WaitMode::Fixed,
                arrival: ArrivalProcess::Open { mean_gap: 40 },
                ..Workload::paper(32, 25, 1000)
            },
        }
    }

    #[test]
    fn scenario_round_trips_through_serde() {
        let spec = sample();
        let text = serde::json::to_string_pretty(&spec.to_value());
        let back = ScenarioSpec::from_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn scenario_runs_end_to_end_from_a_file() {
        let spec = sample();
        let path = std::env::temp_dir().join(format!("cnet-scenario-{}", std::process::id()));
        std::fs::write(&path, serde::json::to_string_pretty(&spec.to_value())).unwrap();
        let json = std::env::temp_dir().join(format!("cnet-scenario-out-{}", std::process::id()));
        let args = ParsedArgs::parse(&[
            path.to_str().unwrap().to_string(),
            "--json".to_string(),
            json.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let out = scenario(&args).unwrap();
        assert!(out.contains("scenario `lossy`"), "{out}");
        assert!(out.contains("ops: 500"), "{out}");
        assert!(out.contains("output counts form a step: yes"), "{out}");
        // the JSON report embeds the spec and the summary
        let report: Value =
            serde::json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        let back = ScenarioSpec::from_value(report.get("scenario").unwrap()).unwrap();
        assert_eq!(back, spec);
        assert!(report.get("summary").is_some());
    }

    #[test]
    fn committed_example_scenario_drops_and_measures_def_2_4() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/scenario_lossy_fabric.json"
        );
        let args = ParsedArgs::parse(&[path.to_string()]).unwrap();
        let out = scenario(&args).unwrap();
        assert!(out.contains("non-linearizable (Def 2.4):"), "{out}");
        assert!(out.contains("backpressure (NACK)"), "{out}");
        // the lossy fabric must actually exercise the retry machinery,
        // and quiescent counts must stay gap-free regardless
        assert!(out.contains("output counts form a step: yes"), "{out}");
        let value = serde::json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        let spec = ScenarioSpec::from_value(&value).unwrap();
        let outcome = cnet_engine::SimBackend::new(&spec.network().unwrap(), spec.config)
            .try_run(&spec.workload)
            .unwrap();
        assert!(
            outcome.stats.fabric.loss_drops > 0,
            "1% loss over ~44k hop attempts must drop something: {:?}",
            outcome.stats.fabric
        );
        assert_eq!(outcome.stats.output_counts.total(), 2000);
    }

    #[test]
    fn unknown_kind_is_a_usage_error() {
        let spec = ScenarioSpec {
            kind: "moebius".to_string(),
            ..sample()
        };
        assert!(spec.network().is_err());
    }

    #[test]
    fn invalid_fabric_is_rejected_before_running() {
        let mut spec = sample();
        spec.config.fabric.link.loss_per_million = 2_000_000;
        let path = std::env::temp_dir().join(format!("cnet-scenario-bad-{}", std::process::id()));
        std::fs::write(&path, serde::json::to_string_pretty(&spec.to_value())).unwrap();
        let args = ParsedArgs::parse(&[path.to_str().unwrap().to_string()]).unwrap();
        let err = scenario(&args).unwrap_err();
        assert!(err.to_string().contains("loss"), "{err}");
    }
}
