//! Subcommand implementations: pure functions from arguments to a
//! report string.

use std::fmt::Write as _;

use cnet_adversary::{
    bitonic_attack, intro_example, search_violations, tree_attack, wave_attack, Scenario,
    SearchConfig,
};
use cnet_engine::{
    ArrivalProcess, AsyncBackend, AsyncConfig, Backend, BalancerKind, CombiningConfig,
    EliminationConfig, MpBackend, MpConfig, RoutePolicy, ShmBackend, SimBackend,
};
use cnet_harness::{run_jobs_report, GridReport, Job, ResultTable, RunRecord};
use cnet_proteus::{SimConfig, WaitMode, Workload};
use cnet_timing::executor::TimedExecutor;
use cnet_timing::{interleave, io, measure, render, threshold as thresh, LinkTiming};
use cnet_topology::{constructions, Topology};
use serde::{Serialize as _, Value};

use crate::args::{CliError, ParsedArgs};

/// Builds the network named by the first two positionals (`kind`,
/// `width`), honoring `--pad` and `--arity`.
fn build_network(args: &ParsedArgs) -> Result<Topology, CliError> {
    let kind = args.positional(0, "kind")?;
    if kind == "file" {
        let path = args.positional(1, "topology file")?;
        let text = std::fs::read_to_string(path).map_err(CliError::failed)?;
        let net = cnet_topology::io::from_text(&text).map_err(CliError::failed)?;
        return match args.u64_opt("pad")? {
            Some(pad) => constructions::pad_inputs(&net, pad as usize).map_err(CliError::failed),
            None => Ok(net),
        };
    }
    let width = args
        .positional(1, "width")?
        .parse::<usize>()
        .map_err(|_| CliError::usage("width must be a number"))?;
    let arity = args.u64_opt("arity")?.unwrap_or(2) as usize;
    let net = match kind {
        "bitonic" => constructions::bitonic(width),
        "periodic" => constructions::periodic(width),
        "tree" if arity == 2 => constructions::counting_tree(width),
        "tree" => constructions::counting_tree_d(width, arity),
        "merger" => constructions::merger(width),
        "block" => constructions::block(width),
        "single" => Ok(constructions::single_balancer()),
        other => return Err(CliError::usage(format!("unknown network kind `{other}`"))),
    }
    .map_err(CliError::failed)?;
    match args.u64_opt("pad")? {
        Some(pad) => constructions::pad_inputs(&net, pad as usize).map_err(CliError::failed),
        None => Ok(net),
    }
}

fn link_timing(args: &ParsedArgs) -> Result<LinkTiming, CliError> {
    LinkTiming::new(args.required_u64("c1")?, args.required_u64("c2")?).map_err(CliError::failed)
}

/// Writes a serde value as pretty JSON when `--json <path>` was given.
fn write_json(args: &ParsedArgs, value: &Value) -> Result<(), CliError> {
    if let Some(path) = args.str_opt("json") {
        std::fs::write(path, serde::json::to_string_pretty(value)).map_err(CliError::failed)?;
    }
    Ok(())
}

/// `cnet topo` — describe a network, optionally as Graphviz DOT.
pub fn topo(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    if args.flag("dot") {
        return Ok(net.to_dot());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} -> {} (inputs -> counters), depth {}, {} balancers",
        net.input_width(),
        net.output_width(),
        net.depth(),
        net.node_count()
    );
    for l in 1..=net.depth() {
        let _ = writeln!(out, "  layer {l}: {} nodes", net.layer(l).len());
    }
    Ok(out)
}

/// `cnet measure` — the paper's linearizability measure for a network.
pub fn measure(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let timing = link_timing(args)?;
    let h = net.depth();
    let mut out = String::new();
    let _ = writeln!(out, "network depth h = {h}, timing {timing}");
    if timing.guarantees_linearizability() {
        let _ = writeln!(
            out,
            "c2 <= 2 c1: linearizable in every execution (Corollary 3.9)"
        );
    } else {
        let _ = writeln!(out, "c2 > 2 c1: violations are possible (Theorems 4.1/4.3)");
        let _ = writeln!(
            out,
            "finish-start guarantee (Thm 3.6):  separation > {}",
            measure::finish_start_separation(h, timing)
        );
        let _ = writeln!(
            out,
            "start-start guarantee (Lemma 3.7): separation > {}",
            measure::start_start_separation(h, timing)
        );
        let k = timing.min_integer_k() as usize;
        let _ = writeln!(
            out,
            "linearizing prefix (Cor 3.12, k = {k}): pad each input with {} unary \
             balancers -> depth {}",
            measure::corollary_3_12_padding(h, k),
            measure::corollary_3_12_depth(h, k)
        );
        let _ = writeln!(
            out,
            "bitonic mass-violation threshold (Thm 4.4) at width {}: ratio > {:.2}",
            net.output_width(),
            measure::bitonic_mass_violation_threshold(
                net.output_width().next_power_of_two().max(2)
            )
        );
    }
    let mut fields = vec![
        ("depth".to_string(), h.to_value()),
        ("c1".to_string(), timing.c1().to_value()),
        ("c2".to_string(), timing.c2().to_value()),
        (
            "guarantees_linearizability".to_string(),
            timing.guarantees_linearizability().to_value(),
        ),
    ];
    if !timing.guarantees_linearizability() {
        let k = timing.min_integer_k() as usize;
        fields.push((
            "finish_start_separation".to_string(),
            measure::finish_start_separation(h, timing).to_value(),
        ));
        fields.push((
            "start_start_separation".to_string(),
            measure::start_start_separation(h, timing).to_value(),
        ));
        fields.push((
            "corollary_3_12_padding".to_string(),
            measure::corollary_3_12_padding(h, k).to_value(),
        ));
        fields.push((
            "corollary_3_12_depth".to_string(),
            measure::corollary_3_12_depth(h, k).to_value(),
        ));
    }
    write_json(args, &Value::Object(fields))?;
    Ok(out)
}

/// `cnet simulate` — one Section 5 cell on the simulator, run through
/// the shared experiment harness (so `--json` emits the same
/// `GridReport` shape as the bench binaries).
pub fn simulate(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let workload = Workload {
        total_ops: args.u64_opt("ops")?.unwrap_or(5000) as usize,
        wait_mode: if args.flag("random-wait") {
            WaitMode::UniformRandom
        } else {
            WaitMode::Fixed
        },
        ..Workload::paper(
            args.required_u64("n")? as usize,
            args.required_u64("f")? as u32,
            args.required_u64("w")?,
        )
    };
    let seed = args.u64_opt("seed")?.unwrap_or(1);
    let config = if args.flag("prism") {
        SimConfig::diffracting(seed)
    } else {
        SimConfig::queue_lock(seed)
    };
    let threads = args.u64_opt("threads")?.unwrap_or(1) as usize;
    let job = Job {
        label: format!(
            "n={},F={}%,W={}",
            workload.processors, workload.delayed_percent, workload.wait_cycles
        ),
        kind: args.positional(0, "kind")?.to_string(),
        net: 0,
        config,
        workload: workload.clone(),
    };
    let (cells, grid) = run_jobs_report(
        "cnet simulate",
        seed,
        std::slice::from_ref(&net),
        std::slice::from_ref(&job),
        threads,
    );
    let stats = &cells[0].stats;
    if let Some(path) = args.positional_opt(2) {
        std::fs::write(path, io::operations_to_csv(&stats.operations)).map_err(CliError::failed)?;
    }
    write_json(args, &grid.to_value())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ops: {}  sim time: {} cycles  throughput: {:.5} ops/cycle",
        stats.operations.len(),
        stats.sim_time,
        stats.throughput()
    );
    let _ = writeln!(
        out,
        "Tog: {:.1}  avg c2/c1 = (Tog+W)/Tog: {:.2}",
        stats.avg_toggle_wait(),
        stats.average_ratio(workload.wait_cycles)
    );
    let _ = writeln!(
        out,
        "toggles: {}  diffracted pairs: {}  deepest lock queue: {}",
        stats.toggle_count, stats.diffraction_pairs, stats.max_lock_queue
    );
    let _ = writeln!(
        out,
        "non-linearizable: {} / {} ({:.2}%)",
        stats.nonlinearizable_count(),
        stats.operations.len(),
        stats.nonlinearizable_ratio() * 100.0
    );
    Ok(out)
}

/// `cnet observe` — run one Section 5 cell with the recording probe
/// layer and report per-balancer contention plus the live `c2/c1`
/// estimates, cross-checked against the offline `timing::sweep`
/// analysis of the same trace.
pub fn observe(args: &ParsedArgs) -> Result<String, CliError> {
    let kind = args.positional_opt(0).unwrap_or("bitonic");
    let width = args.u64_opt("width")?.unwrap_or(32) as usize;
    let net = match kind {
        "bitonic" => constructions::bitonic(width),
        "periodic" => constructions::periodic(width),
        "tree" => constructions::counting_tree(width),
        other => {
            return Err(CliError::usage(format!(
                "unknown network kind `{other}` (bitonic|periodic|tree)"
            )))
        }
    }
    .map_err(CliError::failed)?;
    let workload = Workload {
        total_ops: args.u64_opt("ops")?.unwrap_or(5000) as usize,
        wait_mode: WaitMode::Fixed,
        ..Workload::paper(
            args.u64_opt("n")?.unwrap_or(64) as usize,
            args.u64_opt("f")?.unwrap_or(25) as u32,
            args.u64_opt("w")?.unwrap_or(1000),
        )
    };
    let seed = args.u64_opt("seed")?.unwrap_or(0x0B5E);
    let config = if args.flag("prism") {
        SimConfig::diffracting(seed)
    } else {
        SimConfig::queue_lock(seed)
    };
    let job = Job {
        label: format!(
            "n={},F={}%,W={}",
            workload.processors, workload.delayed_percent, workload.wait_cycles
        ),
        kind: kind.to_string(),
        net: 0,
        config,
        workload: workload.clone(),
    };
    let (cells, _grid) = run_jobs_report(
        "cnet observe",
        seed,
        std::slice::from_ref(&net),
        std::slice::from_ref(&job),
        1,
    );
    let stats = &cells[0].stats;
    let Some(metrics) = stats.metrics.as_ref() else {
        return Err(CliError::usage(
            "this binary was built without the probe layer (cnet-proteus feature `obs`)",
        ));
    };
    let w = workload.wait_cycles;
    let mut table = ResultTable::new(
        format!(
            "per-balancer contention ({kind} width {width}, {})",
            job.label
        ),
        &[
            "visits",
            "toggles",
            "Tog",
            "diffr",
            "lock wait",
            "lock hold",
            "(Tog+W)/Tog",
        ],
    );
    for b in metrics.balancers.iter().filter(|b| b.visits > 0) {
        table.push_row(
            format!("node {}", b.node),
            vec![
                b.visits.to_string(),
                b.toggles.to_string(),
                format!("{:.1}", b.avg_toggle_wait()),
                b.diffracted.to_string(),
                b.lock_wait_total.to_string(),
                b.lock_hold_total.to_string(),
                format!("{:.2}", b.average_ratio(w)),
            ],
        );
    }
    let offline = stats.average_ratio(w);
    let live = &metrics.network;
    let mut out = table.to_text();
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "operations: {}  wire latency c1/c2 estimate: {:.0}/{:.0} cycles",
        live.operations, live.c1_estimate, live.c2_estimate
    );
    let _ = writeln!(
        out,
        "live Tog: {:.1}  live avg c2/c1 = (Tog+W)/Tog: {:.4}  offline (timing::sweep): {:.4}",
        live.avg_toggle_wait, live.average_ratio, offline
    );
    let _ = writeln!(
        out,
        "non-linearizable: {}  magnitude total/max: {}/{}",
        live.nonlinearizable, live.violation_magnitude_total, live.violation_magnitude_max
    );
    // bare `--json` selects stdout; `--json <path>` writes a file
    if args.flag("json") {
        out.push_str(&serde::json::to_string_pretty(&metrics.to_value()));
        out.push('\n');
    } else {
        write_json(args, &metrics.to_value())?;
    }
    Ok(out)
}

/// Parses the workload arrival knobs: `--open MEAN_GAP` or
/// `--bursty BURST,GAP`, defaulting to the paper's closed loop.
fn parse_arrival(args: &ParsedArgs) -> Result<ArrivalProcess, CliError> {
    match (
        args.u64_opt("open")?,
        args.str_opt("bursty"),
        args.str_opt("trace"),
    ) {
        (Some(mean_gap), None, None) => Ok(ArrivalProcess::Open { mean_gap }),
        (None, None, Some(path)) => Ok(ArrivalProcess::Trace {
            path: path.to_string(),
        }),
        (None, Some(spec), None) => {
            let (burst, gap) = spec
                .split_once(',')
                .ok_or_else(|| CliError::usage("--bursty takes BURST,GAP"))?;
            let burst: u32 = burst
                .trim()
                .parse()
                .map_err(|_| CliError::usage("--bursty BURST must be a number"))?;
            let gap: u64 = gap
                .trim()
                .parse()
                .map_err(|_| CliError::usage("--bursty GAP must be a number"))?;
            Ok(ArrivalProcess::Bursty { burst, gap })
        }
        (None, None, None) => Ok(ArrivalProcess::Closed),
        _ => Err(CliError::usage("choose one of --open / --bursty / --trace")),
    }
}

/// Parses a frontend backend suffix: empty → `default`, `:N` → `N`.
/// `name` is the full backend string, for error messages.
fn frontend_param(suffix: &str, default: usize, name: &str) -> Result<usize, CliError> {
    if suffix.is_empty() {
        return Ok(default);
    }
    suffix
        .strip_prefix(':')
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .ok_or_else(|| CliError::usage(format!("bad backend parameter in `{name}` (want `:N`)")))
}

/// Validates that `s` shards can split `width` into power-of-two
/// per-shard widths `>= 2` (the [`ShmBackend::shard`] /
/// [`AsyncBackend::shard`] contract), so the CLI errors before the
/// constructor panics.
fn check_shard_split(width: usize, s: usize, name: &str) -> Result<(), CliError> {
    if !width.is_multiple_of(s) || width / s < 2 || !(width / s).is_power_of_two() {
        return Err(CliError::usage(format!(
            "`{name}`: {s} shards cannot split width {width} \
             into powers of two >= 2"
        )));
    }
    Ok(())
}

/// `cnet run` — one seeded workload executed through the engine on one
/// or more backends (`sim` | `shm` | `shm-batch[:K]` | `shm-shard[:S]`
/// | `mp` | `mp-elim` | `async` | `async-batch[:K]` | `async-shard[:S]`
/// | `async-mp`), compared side by side.
///
/// All backends share the workload and seed; the simulator reports in
/// simulated cycles, the native backends in logical-clock ticks, so the
/// per-backend numbers are comparable in shape, not in units. The
/// frontend flavors append a telemetry line (batch occupancy, shard
/// imbalance, elimination hit rate) under the table.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let kind = args.positional(0, "kind")?.to_string();
    let workload = Workload {
        total_ops: args.u64_opt("ops")?.unwrap_or(2000) as usize,
        wait_mode: WaitMode::Fixed,
        arrival: parse_arrival(args)?,
        ..Workload::paper(
            args.u64_opt("n")?.unwrap_or(8) as usize,
            args.u64_opt("f")?.unwrap_or(0) as u32,
            args.u64_opt("w")?.unwrap_or(0),
        )
    };
    // reject a bad workload (e.g. an unreadable or unsorted --trace
    // file) once, before any backend's infallible `.run` would panic
    workload.validate().map_err(CliError::failed)?;
    let seed = args.u64_opt("seed")?.unwrap_or(1);
    let sim_config = if args.flag("prism") {
        SimConfig::diffracting(seed)
    } else {
        SimConfig::queue_lock(seed)
    };
    let hop_spin = args.u64_opt("hop-spin")?.unwrap_or(0);
    let label = format!(
        "n={},F={}%,W={}",
        workload.processors, workload.delayed_percent, workload.wait_cycles
    );
    let mut table = ResultTable::new(
        format!(
            "backend comparison ({kind}, {label}, {} ops)",
            workload.total_ops
        ),
        &["ops", "wall ms", "nonlin %", "avg c2/c1", "counts", "step"],
    );
    let mut records = Vec::new();
    let mut telemetry = Vec::new();
    for name in args
        .str_opt("backend")
        .unwrap_or("sim,shm,mp")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let outcome = match name {
            "sim" => SimBackend::new(&net, sim_config).run(&workload),
            "shm" => ShmBackend::network(&net, BalancerKind::WaitFree, seed).run(&workload),
            "mp" => MpBackend::new(&net, MpConfig { hop_spin }, seed).run(&workload),
            "mp-elim" => MpBackend::elim(
                &net,
                MpConfig { hop_spin },
                EliminationConfig::default(),
                seed,
            )
            .run(&workload),
            other if other.starts_with("shm-batch") => {
                let k = frontend_param(&other["shm-batch".len()..], 8, other)? as u64;
                let config = CombiningConfig {
                    slots: workload.processors.max(1),
                    max_batch: k,
                    ..CombiningConfig::default()
                };
                ShmBackend::batch(&net, BalancerKind::WaitFree, config, seed).run(&workload)
            }
            other if other.starts_with("shm-shard") => {
                let s = frontend_param(&other["shm-shard".len()..], 4, other)?;
                check_shard_split(net.output_width(), s, other)?;
                ShmBackend::shard(
                    &net,
                    BalancerKind::WaitFree,
                    RoutePolicy::RoundRobin,
                    s,
                    seed,
                )
                .run(&workload)
            }
            "async" => {
                AsyncBackend::network(&net, BalancerKind::WaitFree, AsyncConfig::default(), seed)
                    .run(&workload)
            }
            "async-mp" => {
                AsyncBackend::mp(&net, MpConfig { hop_spin }, AsyncConfig::default(), seed)
                    .run(&workload)
            }
            other if other.starts_with("async-batch") => {
                let k = frontend_param(&other["async-batch".len()..], 8, other)? as u64;
                let config = CombiningConfig {
                    slots: workload.processors.max(1),
                    max_batch: k,
                    ..CombiningConfig::default()
                };
                AsyncBackend::batch(
                    &net,
                    BalancerKind::WaitFree,
                    config,
                    AsyncConfig::default(),
                    seed,
                )
                .run(&workload)
            }
            other if other.starts_with("async-shard") => {
                let s = frontend_param(&other["async-shard".len()..], 4, other)?;
                check_shard_split(net.output_width(), s, other)?;
                AsyncBackend::shard(
                    &net,
                    BalancerKind::WaitFree,
                    RoutePolicy::RoundRobin,
                    s,
                    AsyncConfig::default(),
                    seed,
                )
                .run(&workload)
            }
            other => {
                return Err(CliError::usage(format!(
                    "unknown backend `{other}` (sim|shm|shm-batch[:K]|shm-shard[:S]|mp|mp-elim\
                     |async|async-batch[:K]|async-shard[:S]|async-mp)"
                )))
            }
        };
        if let Some(m) = &outcome.frontend {
            let line = if outcome.backend.ends_with("batch") {
                format!(
                    "{}: avg batch {:.2}, combiner occupancy {}",
                    outcome.backend,
                    m.avg_batch(),
                    cnet_harness::percent(m.combiner_occupancy())
                )
            } else if outcome.backend.ends_with("shard") {
                format!(
                    "{}: shard imbalance {:.3}",
                    outcome.backend,
                    m.shard_imbalance()
                )
            } else {
                format!(
                    "{}: elimination hit rate {}",
                    outcome.backend,
                    cnet_harness::percent(m.elimination_hit_rate())
                )
            };
            telemetry.push(line);
        }
        table.push_row(
            outcome.backend.to_string(),
            vec![
                outcome.stats.operations.len().to_string(),
                format!("{:.2}", outcome.wall_ms),
                cnet_harness::percent(outcome.stats.nonlinearizable_ratio()),
                format!("{:.2}", outcome.stats.average_ratio(workload.wait_cycles)),
                if outcome.counts_exactly() {
                    "ok"
                } else {
                    "FAIL"
                }
                .to_string(),
                if outcome.has_step_property() {
                    "ok"
                } else if matches!(
                    outcome.backend,
                    "shm-batch" | "shm-shard" | "mp-elim" | "async-batch" | "async-shard"
                ) {
                    // frontends trade the exact quiescent step for
                    // throughput by design; that is not a failure
                    "relaxed"
                } else {
                    "FAIL"
                }
                .to_string(),
            ],
        );
        records.push(RunRecord::from_outcome(
            label.clone(),
            kind.clone(),
            &workload,
            seed,
            &outcome,
        ));
    }
    if records.is_empty() {
        return Err(CliError::usage("--backend selected no backends"));
    }
    let grid = GridReport {
        title: "cnet run".to_string(),
        base_seed: seed,
        threads: 1,
        wall_ms: records.iter().map(|r| r.wall_ms).sum(),
        records,
    };
    write_json(args, &grid.to_value())?;
    let mut out = table.to_text();
    for line in &telemetry {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(
        out,
        "\ntimes: sim in simulated cycles, shm/mp in host wall-clock / logical ticks"
    );
    Ok(out)
}

/// `cnet saturate` — sweep open-loop arrival gaps over the async
/// executor and locate the network's saturation knee.
///
/// The in-process face of the saturation atlas (`cnet-bench --bin
/// saturation`): one topology, one client-arena size, the standard gap
/// ladder from far-subcritical down past the service rate. Each gap
/// reports the schema-v5 open-loop block (offered/achieved rate, lag
/// ratio, sojourn quantiles); the knee is the smallest gap whose
/// completions stayed within 1.25× of the arrival span.
pub fn saturate(args: &ParsedArgs) -> Result<String, CliError> {
    /// Same ladder as the atlas bench, subcritical first.
    const GAPS: [u64; 8] = [16_000, 4_000, 1_000, 500, 250, 125, 60, 30];
    const TOLERANCE: f64 = 1.25;
    let net = build_network(args)?;
    let kind = args.positional(0, "kind")?.to_string();
    let clients = args.u64_opt("n")?.unwrap_or(256) as usize;
    let ops = args.u64_opt("ops")?.unwrap_or(2000) as usize;
    let seed = args.u64_opt("seed")?.unwrap_or(1);
    let workers = args.u64_opt("threads")?.unwrap_or(2) as usize;
    let config = AsyncConfig {
        workers,
        ..AsyncConfig::default()
    };
    let mut table = ResultTable::new(
        format!("saturation sweep ({kind}, n={clients}, {ops} ops per gap, async backend)"),
        &[
            "offered kops/s",
            "achieved kops/s",
            "lag",
            "p50 us",
            "p99 us",
            "saturated",
        ],
    );
    let mut records = Vec::new();
    let mut knee: Option<(u64, f64)> = None;
    for &gap in &GAPS {
        let workload = Workload {
            total_ops: ops,
            wait_mode: WaitMode::Fixed,
            arrival: ArrivalProcess::Open { mean_gap: gap },
            ..Workload::paper(clients, 0, 0)
        };
        let outcome =
            AsyncBackend::network(&net, BalancerKind::WaitFree, config, seed).run(&workload);
        let open = outcome
            .open_loop
            .as_ref()
            .expect("open-loop async runs carry telemetry");
        if !open.is_saturated(TOLERANCE) && knee.is_none_or(|(g, _)| gap < g) {
            knee = Some((gap, open.offered_rate()));
        }
        table.push_row(
            format!("gap={gap}ns"),
            vec![
                format!("{:.1}", open.offered_rate() / 1e3),
                format!("{:.1}", open.achieved_rate() / 1e3),
                format!("{:.3}", open.lag_ratio()),
                format!(
                    "{:.1}",
                    open.latency.quantile_upper_bound(0.50) as f64 / 1e3
                ),
                format!(
                    "{:.1}",
                    open.latency.quantile_upper_bound(0.99) as f64 / 1e3
                ),
                if open.is_saturated(TOLERANCE) {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ],
        );
        records.push(RunRecord::from_outcome(
            format!("gap={gap}ns"),
            kind.clone(),
            &workload,
            seed,
            &outcome,
        ));
    }
    let grid = GridReport {
        title: "cnet saturate".to_string(),
        base_seed: seed,
        threads: workers,
        wall_ms: records.iter().map(|r| r.wall_ms).sum(),
        records,
    };
    write_json(args, &grid.to_value())?;
    let mut out = table.to_text();
    match knee {
        Some((gap, offered)) => {
            let _ = writeln!(
                out,
                "knee: gap={gap}ns ({:.1} kops/s offered) — smallest gap with lag <= {TOLERANCE}",
                offered / 1e3
            );
        }
        None => {
            let _ = writeln!(out, "knee: none (every gap saturated at lag > {TOLERANCE})");
        }
    }
    Ok(out)
}

fn attack_scenario(args: &ParsedArgs) -> Result<Scenario, CliError> {
    let name = args.positional(0, "attack")?;
    let timing = link_timing(args)?;
    let width = args.u64_opt("width")?.unwrap_or(8) as usize;
    match name {
        "intro" => intro_example(timing),
        "tree" => tree_attack(width, timing),
        "bitonic" => bitonic_attack(width, timing),
        "wave" => wave_attack(width, timing),
        other => {
            return Err(CliError::usage(format!(
                "unknown attack `{other}` (intro|tree|bitonic|wave)"
            )))
        }
    }
    .map_err(CliError::failed)
}

/// `cnet attack` — run a Section 1/4 scenario and render the timeline.
pub fn attack(args: &ParsedArgs) -> Result<String, CliError> {
    let scenario = attack_scenario(args)?;
    let exec = scenario.execute().map_err(CliError::failed)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} tokens, {} violations",
        scenario.name,
        scenario.schedule.len(),
        exec.nonlinearizable_count()
    );
    if args.flag("svg") {
        out.push_str(&render::svg_timeline(&exec));
    } else {
        out.push_str(&render::text_timeline(&exec, 72));
    }
    Ok(out)
}

/// `cnet interleave` — exhaustively enumerate every interleaving of a
/// small token population.
pub fn interleave_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let tokens = args.u64_opt("tokens")?.unwrap_or(3) as usize;
    let budget = args.u64_opt("budget")?.unwrap_or(2_000_000);
    let inputs: Vec<usize> = (0..tokens).map(|i| i % net.input_width()).collect();
    let r = interleave::enumerate_interleavings(&net, &inputs, budget).map_err(CliError::failed)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} interleavings{}",
        r.executions,
        if r.truncated { " (budget reached)" } else { "" }
    );
    let _ = writeln!(
        out,
        "step-property failures: {} (0 = counting network)",
        r.step_failures
    );
    let _ = writeln!(
        out,
        "executions with order-precedence violations: {} ({:.2}%), worst {} victims",
        r.violating_executions,
        r.violating_fraction() * 100.0,
        r.max_violations
    );
    Ok(out)
}

/// `cnet search` — automated attack search over extremal schedules.
pub fn search(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let timing = link_timing(args)?;
    let tokens = args.u64_opt("tokens")?.unwrap_or(4) as usize;
    let mut config = SearchConfig::for_network(&net, timing, tokens);
    if let Some(budget) = args.u64_opt("budget")? {
        config.budget = budget;
    }
    let out = search_violations(&net, timing, &config).map_err(CliError::failed)?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "searched {} extremal schedules{}; {} violating",
        out.assignments,
        if out.truncated {
            " (budget reached)"
        } else {
            ""
        },
        out.violating
    );
    match out.witness {
        Some(schedule) => {
            let exec = TimedExecutor::new(&net)
                .run(&schedule)
                .map_err(CliError::failed)?;
            let _ = writeln!(report, "witness found:");
            report.push_str(&render::text_timeline(&exec, 72));
        }
        None => {
            let _ = writeln!(
                report,
                "no violating schedule in the box{}",
                if timing.guarantees_linearizability() {
                    " (c2 <= 2 c1: Corollary 3.9 guarantees none exist at all)"
                } else {
                    ""
                }
            );
        }
    }
    Ok(report)
}

/// `cnet threshold` — empirical vs theoretical violation threshold.
pub fn threshold(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let timing = link_timing(args)?;
    let report = thresh::empirical_threshold(&net, timing).map_err(CliError::failed)?;
    let mut out = String::new();
    let _ = writeln!(out, "Theorem 3.6 bound: {}", report.theory_bound);
    match report.max_violating_gap {
        Some(g) => {
            let _ = writeln!(
                out,
                "largest violating finish-start gap found: {g} \
                 (tightness {:.0}%)",
                report.tightness().unwrap_or(0.0) * 100.0
            );
        }
        None => {
            let _ = writeln!(
                out,
                "no violating gap found (the attack family is exhausted)"
            );
        }
    }
    write_json(
        args,
        &Value::Object(vec![
            ("theory_bound".to_string(), report.theory_bound.to_value()),
            (
                "max_violating_gap".to_string(),
                report.max_violating_gap.to_value(),
            ),
            ("tightness".to_string(), report.tightness().to_value()),
        ]),
    )?;
    Ok(out)
}

/// `cnet verify` — exact counting-network check via the 0-1 principle.
pub fn verify(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let budget = args.u64_opt("budget")?.unwrap_or(1 << 22);
    let verdict =
        cnet_topology::verify::is_counting_network(&net, budget).map_err(CliError::failed)?;
    Ok(match verdict {
        cnet_topology::verify::CountingVerdict::Counting => format!(
            "counting network: all {} zero-one inputs sort (AHS equivalence)
",
            1u64 << net.input_width()
        ),
        cnet_topology::verify::CountingVerdict::NotCounting { witness } => format!(
            "NOT a counting network; witness 0-1 input: {witness:?}
"
        ),
    })
}

/// `cnet check` — run the Definition 2.4 checker over a trace CSV.
pub fn check(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positional(0, "trace.csv")?;
    let csv = std::fs::read_to_string(path).map_err(CliError::failed)?;
    let ops = io::operations_from_csv(&csv).map_err(CliError::failed)?;
    let bad = cnet_timing::linearizability::count_nonlinearizable(&ops);
    Ok(format!(
        "{} operations, {} non-linearizable ({:.3}%)\n",
        ops.len(),
        bad,
        if ops.is_empty() {
            0.0
        } else {
            bad as f64 / ops.len() as f64 * 100.0
        }
    ))
}

/// `cnet windows` — violation density over time from a trace CSV.
pub fn windows_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.positional(0, "trace.csv")?;
    let csv = std::fs::read_to_string(path).map_err(CliError::failed)?;
    let ops = io::operations_from_csv(&csv).map_err(CliError::failed)?;
    if ops.is_empty() {
        return Ok("empty trace
"
        .into());
    }
    let span = ops.iter().map(|o| o.end).max().unwrap_or(1);
    let width = args.u64_opt("w")?.unwrap_or_else(|| (span / 24).max(1));
    let profile = cnet_timing::windows::density_profile(&cnet_timing::windows::violation_density(
        &ops, width,
    ));
    Ok(profile)
}

/// `cnet run-schedule` — execute a schedule CSV on a network.
pub fn run_schedule(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let path = args.positional(2, "schedule.csv")?;
    let csv = std::fs::read_to_string(path).map_err(CliError::failed)?;
    let schedule = io::schedule_from_csv(&csv).map_err(CliError::failed)?;
    let exec = TimedExecutor::new(&net)
        .run(&schedule)
        .map_err(CliError::failed)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} tokens, {} violations, final counts {}",
        schedule.len(),
        exec.nonlinearizable_count(),
        exec.output_counts()
    );
    if args.flag("svg") {
        out.push_str(&render::svg_timeline(&exec));
    } else {
        out.push_str(&render::text_timeline(&exec, 72));
    }
    Ok(out)
}

/// Parses `--slo RATE,MAG,P99NS` into a policy (unbounded when the
/// option is absent).
fn slo_policy(args: &ParsedArgs) -> Result<cnet_obs::SloPolicy, CliError> {
    let Some(spec) = args.str_opt("slo") else {
        return Ok(cnet_obs::SloPolicy::unbounded());
    };
    let parts: Vec<&str> = spec.split(',').collect();
    let [rate, mag, p99] = parts.as_slice() else {
        return Err(CliError::usage(format!(
            "--slo expects RATE,MAG,P99NS (e.g. 0.05,64,5000000), got `{spec}`"
        )));
    };
    let max_violation_rate: f64 = rate
        .parse()
        .map_err(|_| CliError::usage(format!("--slo rate must be a fraction, got `{rate}`")))?;
    if !(0.0..=1.0).contains(&max_violation_rate) {
        return Err(CliError::usage(format!(
            "--slo rate must be in [0, 1], got `{rate}`"
        )));
    }
    let max_magnitude: u64 = mag
        .parse()
        .map_err(|_| CliError::usage(format!("--slo magnitude must be a count, got `{mag}`")))?;
    let p99_latency_ns: u64 = p99
        .parse()
        .map_err(|_| CliError::usage(format!("--slo p99 must be nanoseconds, got `{p99}`")))?;
    Ok(cnet_obs::SloPolicy {
        max_violation_rate,
        max_magnitude,
        p99_latency_ns,
    })
}

/// `cnet serve` — run the counter daemon until `SIGTERM`/`SIGINT` or a
/// client `Shutdown`, then report the final SLO snapshot. Exits 4 (via
/// [`CliError::Gate`]) when the service's lifetime was not breach-free.
pub fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    let net = build_network(args)?;
    let kind = args.positional(0, "kind")?.to_string();
    let socket = args
        .str_opt("socket")
        .ok_or_else(|| CliError::usage("--socket PATH is required"))?;
    let mut config = cnet_serve::ServeConfig::new(socket);
    config.policy = slo_policy(args)?;
    if let Some(w) = args.u64_opt("window")? {
        config.window_ops = w;
    }
    if let Some(h) = args.u64_opt("history")? {
        config.history_cap = h as usize;
    }
    if let Some(path) = args.str_opt("dump") {
        config.dump_path = Some(path.into());
    }
    if let Some(secs) = args.u64_opt("dump-every")? {
        config.dump_every = std::time::Duration::from_secs(secs.max(1));
    }
    if let Some(label) = args.str_opt("label") {
        config.label = label.to_string();
    }
    config.seed = args.u64_opt("seed")?.unwrap_or(0);
    config.kind = kind;
    config.watch_signals = true;

    cnet_serve::signal::install_termination_handler();
    let handle = cnet_serve::CounterServer::start(&net, config).map_err(CliError::failed)?;
    eprintln!(
        "cnet serve: listening on {}",
        handle.socket_path().display()
    );
    let summary = handle.wait().map_err(CliError::failed)?;

    let mut out = summary.report.to_metrics_text();
    let _ = writeln!(
        out,
        "served {} ops over {} connection(s); history retained {} (dropped {}), {} dump(s) written",
        summary.report.total.ops,
        summary.connections,
        summary.operations.len(),
        summary.history_dropped,
        summary.dumps_written,
    );
    if summary.report.breach_free() {
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "SLO BREACH: {} ok->breach transition(s), onsets at {:?} ms",
            summary.report.breaches, summary.report.breach_timestamps_ms
        );
        Err(CliError::Gate {
            code: 4,
            message: out,
        })
    }
}

/// `cnet drive` — soak a running daemon with open-loop load and judge
/// the observed trace. With `--baseline` the run is gated against the
/// committed reference (exit 3 on regression); adding
/// `--write-slo-baseline` regenerates the reference instead.
pub fn drive_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let socket = args
        .str_opt("socket")
        .ok_or_else(|| CliError::usage("--socket PATH is required"))?;
    let mut config = cnet_serve::DriveConfig::new(socket);
    if let Some(c) = args.u64_opt("clients")? {
        config.clients = (c as usize).max(1);
    }
    if let Some(r) = args.u64_opt("rate")? {
        config.rate_per_sec = r.max(1);
    }
    if let Some(s) = args.u64_opt("duration")? {
        config.duration = std::time::Duration::from_secs(s.max(1));
    }
    if let Some(b) = args.u64_opt("batch")? {
        config.batch = u32::try_from(b.max(1))
            .map_err(|_| CliError::usage("--batch is too large for a u32"))?;
    }
    if let Some(w) = args.u64_opt("window")? {
        config.window_ops = w;
    }
    config.policy = slo_policy(args)?;
    if let Some(seed) = args.u64_opt("seed")? {
        config.seed = seed;
    }

    let outcome = cnet_serve::drive(&config).map_err(CliError::failed)?;
    if outcome.requests == 0 {
        return Err(CliError::usage(format!(
            "every request failed ({} failures) — is the server at {} healthy?",
            outcome.failures,
            config.socket.display()
        )));
    }

    let mut out = outcome.report.to_metrics_text();
    let _ = writeln!(
        out,
        "drove {} request(s) / {} value(s) in {:.2}s ({:.0} req/s offered, {} failure(s))",
        outcome.requests,
        outcome.values,
        outcome.elapsed.as_secs_f64(),
        config.rate_per_sec as f64,
        outcome.failures,
    );
    write_json(args, &outcome.report.to_value())?;

    // the measuring host caveat, exactly as the native benches apply it
    let (_, run_noisy) = cnet_harness::native_cell_reps(config.clients, 1);
    if let Some(path) = args.str_opt("baseline") {
        let path = std::path::Path::new(path);
        if args.flag("write-slo-baseline") {
            let baseline = cnet_harness::SloBaseline {
                policy: config.policy,
                reference: outcome.report.clone(),
                noisy: run_noisy,
            };
            baseline.save(path).map_err(CliError::usage)?;
            let _ = writeln!(out, "wrote SLO baseline to {}", path.display());
        } else {
            let baseline = cnet_harness::SloBaseline::load(path).map_err(CliError::usage)?;
            let comparison = baseline.compare(&outcome.report, run_noisy);
            out.push_str(&comparison.table.to_text());
            if !comparison.passed() {
                for r in &comparison.regressions {
                    let _ = writeln!(out, "REGRESSED: {r}");
                }
                return Err(CliError::Gate {
                    code: 3,
                    message: out,
                });
            }
            let _ = writeln!(out, "SLO gate passed vs {}", path.display());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn topo_describes_bitonic() {
        let out = topo(&parse(&["bitonic", "8"])).unwrap();
        assert!(out.contains("8 -> 8"));
        assert!(out.contains("depth 6"));
        assert!(out.contains("layer 6: 4 nodes"));
    }

    #[test]
    fn topo_dot_output() {
        let out = topo(&parse(&["single", "2", "--dot"])).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn topo_with_padding_and_arity() {
        let out = topo(&parse(&["tree", "9", "--arity", "3", "--pad", "2"])).unwrap();
        assert!(out.contains("depth 4"), "{out}");
    }

    #[test]
    fn topo_rejects_unknown_kind() {
        assert!(topo(&parse(&["torus", "8"])).is_err());
    }

    #[test]
    fn measure_reports_guarantee() {
        let out = measure(&parse(&["bitonic", "8", "--c1", "10", "--c2", "20"])).unwrap();
        assert!(out.contains("Corollary 3.9"));
    }

    #[test]
    fn measure_reports_bounds_when_skewed() {
        let out = measure(&parse(&["bitonic", "8", "--c1", "10", "--c2", "35"])).unwrap();
        assert!(out.contains("Thm 3.6"));
        assert!(out.contains("k = 4"));
    }

    #[test]
    fn simulate_small_cell() {
        let out = simulate(&parse(&[
            "bitonic", "8", "--n", "8", "--f", "50", "--w", "100", "--ops", "100",
        ]))
        .unwrap();
        assert!(out.contains("ops: 100"));
        assert!(out.contains("avg c2/c1"));
    }

    #[test]
    fn run_compares_all_backends_by_default() {
        let out = run(&parse(&["bitonic", "4", "--n", "4", "--ops", "200"])).unwrap();
        for backend in ["sim", "shm", "mp"] {
            assert!(out.contains(backend), "missing {backend} row:\n{out}");
        }
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn run_single_backend_with_open_arrivals() {
        let out = run(&parse(&[
            "bitonic",
            "4",
            "--backend",
            "shm",
            "--n",
            "4",
            "--ops",
            "150",
            "--open",
            "300",
        ]))
        .unwrap();
        assert!(out.lines().any(|l| l.starts_with("shm")), "{out}");
        assert!(!out.lines().any(|l| l.starts_with("sim")), "{out}");
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn run_writes_grid_report_json() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        run(&parse(&[
            "bitonic",
            "4",
            "--backend",
            "sim,mp",
            "--n",
            "2",
            "--ops",
            "64",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        use serde::Deserialize as _;
        let grid = GridReport::from_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(grid.records.len(), 2);
        assert_eq!(grid.records[0].backend, "sim");
        assert_eq!(grid.records[1].backend, "mp");
    }

    #[test]
    fn run_frontend_backends_report_telemetry() {
        let out = run(&parse(&[
            "bitonic",
            "16",
            "--backend",
            "shm-batch:4,shm-shard:4,mp-elim",
            "--n",
            "4",
            "--ops",
            "200",
        ]))
        .unwrap();
        assert!(out.contains("shm-batch"), "{out}");
        assert!(out.contains("avg batch"), "{out}");
        assert!(out.contains("shard imbalance"), "{out}");
        assert!(out.contains("elimination hit rate"), "{out}");
        // counting stays exact on every frontend; only the step column
        // may read `relaxed`
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn run_frontend_backends_accept_defaults() {
        let out = run(&parse(&[
            "bitonic",
            "16",
            "--backend",
            "shm-batch,shm-shard",
            "--n",
            "2",
            "--ops",
            "80",
        ]))
        .unwrap();
        assert!(out.contains("shm-batch"), "{out}");
        assert!(out.contains("shm-shard"), "{out}");
    }

    #[test]
    fn run_async_backends_compare_cleanly() {
        let out = run(&parse(&[
            "bitonic",
            "16",
            "--backend",
            "async,async-batch:4,async-shard:4,async-mp",
            "--n",
            "8",
            "--ops",
            "200",
        ]))
        .unwrap();
        for backend in ["async", "async-batch", "async-shard", "async-mp"] {
            assert!(
                out.lines().any(|l| l.starts_with(backend)),
                "missing {backend} row:\n{out}"
            );
        }
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn run_async_with_open_arrivals() {
        let out = run(&parse(&[
            "bitonic",
            "4",
            "--backend",
            "async",
            "--n",
            "4",
            "--ops",
            "150",
            "--open",
            "300",
        ]))
        .unwrap();
        assert!(out.lines().any(|l| l.starts_with("async")), "{out}");
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn run_rejects_bad_async_shard_split() {
        assert!(run(&parse(&["bitonic", "4", "--backend", "async-shard:4"])).is_err());
    }

    #[test]
    fn saturate_locates_a_knee_and_writes_grid_json() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saturate.json");
        let out = saturate(&parse(&[
            "bitonic",
            "4",
            "--n",
            "8",
            "--ops",
            "300",
            "--seed",
            "7",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("saturation sweep"), "{out}");
        assert!(out.contains("knee:"), "{out}");
        use serde::Deserialize as _;
        let text = std::fs::read_to_string(&path).unwrap();
        let grid = GridReport::from_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(grid.records.len(), 8, "one record per swept gap");
        assert!(
            grid.records.iter().all(|r| r.open_loop.is_some()),
            "every record carries the open-loop block"
        );
    }

    #[test]
    fn run_rejects_bad_frontend_parameters() {
        // non-numeric batch width
        assert!(run(&parse(&["bitonic", "4", "--backend", "shm-batch:x"])).is_err());
        // 3 shards cannot split width 4
        assert!(run(&parse(&["bitonic", "4", "--backend", "shm-shard:3"])).is_err());
        // shard width 1 is not a balancing network
        assert!(run(&parse(&["bitonic", "4", "--backend", "shm-shard:4"])).is_err());
    }

    #[test]
    fn run_rejects_unknown_backend_and_conflicting_arrivals() {
        assert!(run(&parse(&["bitonic", "4", "--backend", "gpu"])).is_err());
        assert!(run(&parse(&[
            "bitonic", "4", "--open", "10", "--bursty", "4,100"
        ]))
        .is_err());
        assert!(run(&parse(&["bitonic", "4", "--bursty", "nonsense"])).is_err());
        assert!(run(&parse(&[
            "bitonic", "4", "--open", "10", "--trace", "x.txt"
        ]))
        .is_err());
    }

    #[test]
    fn run_replays_a_trace_on_every_backend() {
        let trace = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/arrival_trace.txt"
        );
        let out = run(&parse(&[
            "bitonic", "4", "--ops", "30", "--n", "4", "--trace", trace,
        ]))
        .unwrap();
        assert!(out.contains("sim"), "{out}");
        // a missing trace file is a workload validation error, uniformly
        let err = run(&parse(&["bitonic", "4", "--trace", "/nonexistent.txt"])).unwrap_err();
        assert!(err.to_string().contains("Trace"), "{err}");
    }

    #[test]
    fn attack_tree_violates() {
        let out = attack(&parse(&[
            "tree", "--width", "8", "--c1", "10", "--c2", "30",
        ]))
        .unwrap();
        assert!(out.contains("theorem-4.1-tree"));
        assert!(!out.contains(" 0 violations"));
    }

    #[test]
    fn attack_svg_flag() {
        let out = attack(&parse(&["intro", "--c1", "2", "--c2", "10", "--svg"])).unwrap();
        assert!(out.contains("<svg"));
    }

    #[test]
    fn threshold_tree() {
        let out = threshold(&parse(&["tree", "16", "--c1", "10", "--c2", "30"])).unwrap();
        assert!(out.contains("Theorem 3.6 bound: 40"));
        assert!(out.contains("tightness 100%"));
    }

    #[test]
    fn check_reads_trace_file() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(
            &path,
            "token,input,start,end,counter,value\n0,0,0,3,0,5\n1,0,4,6,0,1\n",
        )
        .unwrap();
        let out = check(&parse(&[path.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 operations, 1 non-linearizable"));
    }

    #[test]
    fn run_schedule_round_trip() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schedule.csv");
        // the intro example on the single balancer
        std::fs::write(&path, "token,input,t1,t2\n0,0,0,8\n1,0,1,3\n2,0,4,6\n").unwrap();
        let out = run_schedule(&parse(&["single", "2", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("3 tokens, 1 violations"), "{out}");
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn interleave_single_balancer() {
        let out = interleave_cmd(&parse(&["single", "2", "--tokens", "3"])).unwrap();
        assert!(out.contains("90 interleavings"), "{out}");
        assert!(out.contains("step-property failures: 0"));
    }

    #[test]
    fn interleave_budget_truncates() {
        let out =
            interleave_cmd(&parse(&["single", "2", "--tokens", "3", "--budget", "5"])).unwrap();
        assert!(out.contains("budget reached"));
    }

    #[test]
    fn simulate_writes_json_report_and_matches_across_threads() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.json");
        let mut outputs = Vec::new();
        for threads in ["1", "4"] {
            let out = simulate(&parse(&[
                "bitonic",
                "8",
                "--n",
                "8",
                "--f",
                "50",
                "--w",
                "100",
                "--ops",
                "100",
                "--threads",
                threads,
                "--json",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "thread count changes nothing");
        let v = serde::json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v.get("title"), Some(&Value::Str("cnet simulate".into())));
        let records = match v.get("records") {
            Some(Value::Array(r)) => r,
            other => panic!("records array expected, got {other:?}"),
        };
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn measure_and_threshold_write_json() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mpath = dir.join("measure.json");
        measure(&parse(&[
            "bitonic",
            "8",
            "--c1",
            "10",
            "--c2",
            "35",
            "--json",
            mpath.to_str().unwrap(),
        ]))
        .unwrap();
        let v = serde::json::from_str(&std::fs::read_to_string(&mpath).unwrap()).unwrap();
        assert_eq!(
            v.get("guarantees_linearizability"),
            Some(&Value::Bool(false))
        );
        assert!(v.get("corollary_3_12_padding").is_some());

        let tpath = dir.join("threshold.json");
        threshold(&parse(&[
            "tree",
            "16",
            "--c1",
            "10",
            "--c2",
            "30",
            "--json",
            tpath.to_str().unwrap(),
        ]))
        .unwrap();
        let v = serde::json::from_str(&std::fs::read_to_string(&tpath).unwrap()).unwrap();
        assert_eq!(v.get("theory_bound"), Some(&Value::Uint(40)));
        assert!(v.get("max_violating_gap").is_some());
    }

    #[test]
    fn simulate_writes_trace() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("simtrace.csv");
        let out = simulate(&parse(&[
            "bitonic",
            "8",
            path.to_str().unwrap(),
            "--n",
            "8",
            "--f",
            "0",
            "--w",
            "0",
            "--ops",
            "50",
        ]))
        .unwrap();
        assert!(out.contains("ops: 50"));
        let csv = std::fs::read_to_string(&path).unwrap();
        assert_eq!(csv.lines().count(), 51, "header + 50 rows");
        // and the check subcommand can read it back
        let report = check(&parse(&[path.to_str().unwrap()])).unwrap();
        assert!(report.contains("50 operations"));
    }
}

#[cfg(test)]
mod observe_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn observe_reports_per_balancer_contention() {
        let out = observe(&parse(&["--width", "8", "--n", "16", "--ops", "400"])).unwrap();
        assert!(out.contains("per-balancer contention"), "{out}");
        assert!(out.contains("node 0"));
        assert!(out.contains("(Tog+W)/Tog"));
        assert!(out.contains("live avg c2/c1"));
    }

    #[test]
    fn live_ratio_matches_offline_sweep_within_tolerance() {
        // the acceptance check: on a deterministic seed the live
        // estimate and the offline timing::sweep analysis agree
        let out = observe(&parse(&["--width", "32", "--ops", "5000"])).unwrap();
        // the line carries three decimals: live Tog, live ratio,
        // offline ratio — integers like "c2/c1" are filtered out by
        // requiring a decimal point
        let nums: Vec<f64> = out
            .lines()
            .find(|l| l.contains("live avg c2/c1"))
            .expect("summary line present")
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .filter(|s| s.contains('.'))
            .filter_map(|s| s.parse().ok())
            .collect();
        assert_eq!(nums.len(), 3, "Tog + two ratios: {nums:?}");
        let (live, offline) = (nums[1], nums[2]);
        assert!(
            (live - offline).abs() / offline < 0.05,
            "live {live} vs offline {offline}"
        );
    }

    #[test]
    fn bare_json_flag_prints_metrics_to_stdout() {
        let out = observe(&parse(&[
            "--width", "8", "--n", "8", "--ops", "200", "--json",
        ]))
        .unwrap();
        let json_start = out.find('{').expect("JSON object in output");
        let v = serde::json::from_str(&out[json_start..]).expect("valid JSON");
        let snap = <cnet_obs::MetricsSnapshot as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(snap.schema_version, cnet_obs::METRICS_SCHEMA_VERSION);
        assert_eq!(snap.network.operations, 200);
        assert!(!snap.balancers.is_empty());
    }

    #[test]
    fn json_path_writes_metrics_file() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("observe.json");
        observe(&parse(&[
            "--width",
            "8",
            "--n",
            "8",
            "--ops",
            "200",
            "--json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let v = serde::json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let snap = <cnet_obs::MetricsSnapshot as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(snap.network.operations, 200);
    }

    #[test]
    fn observe_is_deterministic_for_a_seed() {
        let a = observe(&parse(&["--width", "8", "--ops", "300", "--seed", "7"])).unwrap();
        let b = observe(&parse(&["--width", "8", "--ops", "300", "--seed", "7"])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn observe_prism_counts_diffractions() {
        let out = observe(&parse(&[
            "tree", "--width", "8", "--n", "32", "--ops", "500", "--prism",
        ]))
        .unwrap();
        assert!(out.contains("per-balancer contention (tree"), "{out}");
    }

    #[test]
    fn observe_rejects_unknown_kind() {
        assert!(observe(&parse(&["torus", "--width", "8"])).is_err());
    }
}

#[cfg(test)]
mod file_topology_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn topo_loads_a_file() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.topo");
        let net = cnet_topology::constructions::bitonic(4).unwrap();
        std::fs::write(&path, cnet_topology::io::to_text(&net)).unwrap();
        let out = topo(&parse(&["file", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("4 -> 4"), "{out}");
        assert!(out.contains("depth 3"));
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(topo(&parse(&["file", "/nonexistent/net.topo"])).is_err());
    }
}

#[cfg(test)]
mod search_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn search_finds_the_intro_witness() {
        let out = search(&parse(&[
            "single", "2", "--c1", "2", "--c2", "8", "--tokens", "3",
        ]))
        .unwrap();
        assert!(out.contains("witness found"), "{out}");
    }

    #[test]
    fn search_reports_guarantee_when_tame() {
        let out = search(&parse(&[
            "tree", "4", "--c1", "10", "--c2", "20", "--tokens", "4",
        ]))
        .unwrap();
        assert!(out.contains("Corollary 3.9"), "{out}");
    }
}

#[cfg(test)]
mod verify_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn verify_accepts_bitonic() {
        let out = verify(&parse(&["bitonic", "8"])).unwrap();
        assert!(out.contains("counting network: all 256"), "{out}");
    }

    #[test]
    fn verify_rejects_a_lone_block() {
        let out = verify(&parse(&["block", "8"])).unwrap();
        assert!(out.contains("NOT a counting network"), "{out}");
        assert!(out.contains("witness"));
    }
}

#[cfg(test)]
mod serve_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("cnet-cli-serve-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn slo_policy_parses_and_validates() {
        assert_eq!(
            slo_policy(&parse(&[])).unwrap(),
            cnet_obs::SloPolicy::unbounded()
        );
        let p = slo_policy(&parse(&["--slo", "0.05,64,5000000"])).unwrap();
        assert!((p.max_violation_rate - 0.05).abs() < 1e-12);
        assert_eq!(p.max_magnitude, 64);
        assert_eq!(p.p99_latency_ns, 5_000_000);
        assert!(slo_policy(&parse(&["--slo", "0.05,64"])).is_err());
        assert!(slo_policy(&parse(&["--slo", "1.5,64,1"])).is_err());
        assert!(slo_policy(&parse(&["--slo", "rate,64,1"])).is_err());
    }

    #[test]
    fn serve_requires_a_socket() {
        let e = serve(&parse(&["bitonic", "4"])).unwrap_err();
        assert!(e.to_string().contains("--socket"));
        let e = drive_cmd(&parse(&[])).unwrap_err();
        assert!(e.to_string().contains("--socket"));
    }

    #[test]
    fn drive_against_a_dead_socket_fails_cleanly() {
        let e = drive_cmd(&parse(&[
            "--socket",
            &temp("dead.sock"),
            "--duration",
            "1",
            "--rate",
            "1",
        ]))
        .unwrap_err();
        assert!(matches!(e, CliError::Failed(_)));
    }

    /// The whole loop in-process: `serve` on one thread, `drive`
    /// against it, a baseline written then gated against, shutdown via
    /// the client, and the serve side exiting breach-free.
    #[test]
    fn serve_and_drive_round_trip_with_baseline_gate() {
        let socket = temp("loop.sock");
        let baseline = temp("loop-baseline.json");
        let json = temp("loop-report.json");
        let serve_args = parse(&[
            "bitonic",
            "8",
            "--socket",
            &socket,
            "--window",
            "64",
            "--slo",
            "1.0,18446744073709551615,18446744073709551615",
        ]);
        let server = std::thread::spawn(move || serve(&serve_args));

        let drive_args: Vec<String> = [
            "--socket",
            &socket,
            "--clients",
            "2",
            "--rate",
            "2000",
            "--duration",
            "1",
            "--window",
            "64",
            "--baseline",
            &baseline,
            "--json",
            &json,
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let mut write_args = drive_args.clone();
        write_args.push("--write-slo-baseline".to_string());
        let out = drive_cmd(&ParsedArgs::parse(&write_args).unwrap()).unwrap();
        assert!(out.contains("wrote SLO baseline"), "{out}");

        // second run gates against the reference it just wrote
        let out = drive_cmd(&ParsedArgs::parse(&drive_args).unwrap()).unwrap();
        assert!(out.contains("SLO gate passed"), "{out}");
        assert!(out.contains("cnet_serve_ops_total"), "{out}");

        let mut client = cnet_serve::ServeClient::connect(&socket).unwrap();
        client.shutdown().unwrap();
        let report = server.join().unwrap().unwrap();
        assert!(report.contains("cnet_serve_breaches_total 0"), "{report}");
        assert!(report.contains("connection(s)"), "{report}");
        for p in [&socket, &baseline, &json] {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod windows_tests {
    use super::*;

    fn parse(v: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn windows_profile_from_trace() {
        let dir = std::env::temp_dir().join("cnet-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wtrace.csv");
        std::fs::write(
            &path,
            "token,input,start,end,counter,value\n0,0,0,5,0,9\n1,0,6,20,0,0\n",
        )
        .unwrap();
        let out = windows_cmd(&parse(&[path.to_str().unwrap()])).unwrap();
        assert!(
            out.contains('#'),
            "the violation shows in the profile: {out}"
        );
    }
}
